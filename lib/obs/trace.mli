(** Span-based structured tracing for the coverage pipeline.

    A {e span} is one named, timed interval of work (parsing, one
    control-plane convergence round, one IFG materialization, one BDD
    labeling cone, ...). Spans nest by wall-clock containment: a span
    opened while another span is running on the same domain renders as
    its child. The collector is a single process-wide ring buffer,
    safe to record into from any domain; when the buffer fills, the
    {e oldest} events are overwritten and {!dropped} counts the loss.

    Tracing is {b off by default} and [with_span] is a direct call of
    its thunk while off, so instrumented code pays one atomic load per
    span when tracing is disabled. Enabling tracing never changes any
    computed result — only observability output.

    The export format is Chrome [trace_event] JSON (the
    ["traceEvents"] array form), loadable in [chrome://tracing] and
    {{:https://ui.perfetto.dev}Perfetto}. The envelope and its
    ["netcovTraceVersion"] field are documented in
    [docs/OBSERVABILITY.md]. *)

(** A span/event argument value, rendered into the event's ["args"]
    object. *)
type arg = S of string | I of int | F of float | B of bool

(** Version of the exported JSON envelope (the ["netcovTraceVersion"]
    field). Bumped whenever the envelope shape changes. *)
val schema_version : int

(** [enable ?capacity ()] clears the buffer, resets the epoch used for
    relative timestamps and turns collection on. [capacity] is the
    ring size in events (default 65536, clamped to at least 16). *)
val enable : ?capacity:int -> unit -> unit

(** [disable ()] stops collection. Already-recorded events are kept
    and can still be exported. *)
val disable : unit -> unit

(** [enabled ()] reports whether spans are currently being recorded. *)
val enabled : unit -> bool

(** [clear ()] discards all recorded events and resets the timestamp
    epoch and the dropped-event counter, without changing the
    enabled/disabled state. *)
val clear : unit -> unit

(** [with_span ?cat ?args name f] runs [f], recording one complete
    span named [name] covering its execution. The span is recorded
    even when [f] raises (the exception propagates). [cat] is the
    Chrome trace category (default ["netcov"]). No-op wrapper when
    tracing is disabled. *)
val with_span : ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a

(** [instant ?cat ?args name] records a zero-duration marker event. *)
val instant : ?cat:string -> ?args:(string * arg) list -> string -> unit

(** A recorded event. Timestamps are microseconds relative to the last
    {!enable}/{!clear}; [ev_tid] is the recording domain's id. *)
type event = {
  ev_name : string;
  ev_cat : string;
  ev_phase : [ `Complete | `Instant ];  (** Chrome phase [X] or [i] *)
  ev_ts_us : float;  (** start timestamp, microseconds *)
  ev_dur_us : float;  (** duration, microseconds; 0 for instants *)
  ev_tid : int;  (** recording domain id *)
  ev_seq : int;  (** process-wide span start order *)
  ev_args : (string * arg) list;
}

(** [events ()] is a snapshot of the retained events, sorted by start
    timestamp (ties broken by start order, so a parent span precedes
    its children even when their timestamps coincide at clock
    resolution). *)
val events : unit -> event list

(** [dropped ()] is the number of events lost to ring-buffer
    overwrites since the last {!enable}/{!clear}. *)
val dropped : unit -> int

(** [find_spans name] is the retained complete spans named [name], in
    {!events} order — a convenience for tests and summaries. *)
val find_spans : string -> event list

(** [to_json ()] renders the retained events as a Chrome
    [trace_event] JSON document (see [docs/OBSERVABILITY.md] for the
    schema). Deterministic given the same event list. *)
val to_json : unit -> string

(** [write path] writes {!to_json} to [path]. *)
val write : string -> unit

(** Minimal JSON string escaping, shared by the trace and metrics
    exporters (exposed for tests). *)
val escape : string -> string

(** Finite JSON number rendering: integers print without a fraction,
    NaN renders as [0] and infinities clamp to [±1e308]. *)
val json_float : float -> string
