(** Shared wall-clock timing: one-shot measurements and named
    accumulating sections, replacing the ad-hoc [Unix.gettimeofday]
    deltas previously hand-rolled by the materializer, the rule engine
    and the bench.

    Sections are plain mutable accumulators and deliberately {e not}
    synchronized: keep one per domain (the rule context owns its own,
    so the parallel pipeline never shares one across domains). For
    cross-domain aggregation use {!Metrics} instead. *)

(** [now ()] is the current wall-clock time in seconds. *)
val now : unit -> float

(** [time f] runs [f] and returns its result with the elapsed wall
    seconds. *)
val time : (unit -> 'a) -> 'a * float

(** A named accumulator: total elapsed seconds and number of recorded
    runs. *)
type section

(** [make name] is a fresh zeroed section. *)
val make : string -> section

(** [name s] is the name [s] was created with. *)
val name : section -> string

(** [record s f] runs [f], adding its wall time (and one run) to [s].
    Exceptions propagate; the partial elapsed time is still recorded. *)
val record : section -> (unit -> 'a) -> 'a

(** [add s dt] accounts [dt] seconds and one run without running
    anything. *)
val add : section -> float -> unit

(** [total s] is the accumulated seconds recorded in [s]. *)
val total : section -> float

(** [count s] is the number of runs recorded in [s]. *)
val count : section -> int

(** [reset s] zeroes the accumulated time and run count. *)
val reset : section -> unit
