type labels = (string * string) list

let schema_version = 1

type gauge_data = { mutable g : float }

type hist_data = {
  hbounds : float array;
  hcounts : int array;  (* length = Array.length hbounds + 1; last = +Inf *)
  mutable hsum : float;
  mutable hcount : int;
}

type data = Dcounter of int Atomic.t | Dgauge of gauge_data | Dhist of hist_data

type metric = {
  m_name : string;
  m_labels : labels;
  m_help : string;
  m_unit : string;
  m_data : data;
}

type registry = { mu : Mutex.t; tbl : (string, metric) Hashtbl.t }
type counter = int Atomic.t
type gauge = { g_mu : Mutex.t; g_d : gauge_data }
type histogram = { h_mu : Mutex.t; h_d : hist_data }

let create () = { mu = Mutex.create (); tbl = Hashtbl.create 64 }
let default = create ()

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let key name labels =
  match labels with
  | [] -> name
  | l ->
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l)
      ^ "}"

(* Register-or-retrieve under the registry mutex. [extract] projects the
   typed handle out of an existing metric (None = kind mismatch);
   [build] makes the data for a fresh registration. *)
let register reg ~help ~unit_ ~labels name ~extract ~build =
  let labels = canon_labels labels in
  let k = key name labels in
  Mutex.lock reg.mu;
  let result =
    match Hashtbl.find_opt reg.tbl k with
    | Some m -> (
        match extract m.m_data with
        | Some h -> Ok h
        | None ->
            Error
              (Printf.sprintf
                 "Metrics: %s already registered with a different kind or buckets"
                 k))
    | None ->
        let data, handle = build () in
        Hashtbl.add reg.tbl k
          { m_name = name; m_labels = labels; m_help = help; m_unit = unit_;
            m_data = data };
        Ok handle
  in
  Mutex.unlock reg.mu;
  match result with Ok h -> h | Error msg -> invalid_arg msg

let counter reg ?(help = "") ?(unit_ = "") ?(labels = []) name : counter =
  register reg ~help ~unit_ ~labels name
    ~extract:(function Dcounter a -> Some a | _ -> None)
    ~build:(fun () ->
      let a = Atomic.make 0 in
      (Dcounter a, a))

let inc (c : counter) n = ignore (Atomic.fetch_and_add c n)

let gauge reg ?(help = "") ?(unit_ = "") ?(labels = []) name : gauge =
  register reg ~help ~unit_ ~labels name
    ~extract:(function Dgauge d -> Some { g_mu = reg.mu; g_d = d } | _ -> None)
    ~build:(fun () ->
      let d = { g = 0. } in
      (Dgauge d, { g_mu = reg.mu; g_d = d }))

let set (g : gauge) v =
  Mutex.lock g.g_mu;
  g.g_d.g <- v;
  Mutex.unlock g.g_mu

let validate_bounds bounds =
  let ok = ref (bounds <> []) in
  List.iteri
    (fun i b ->
      if not (Float.is_finite b) then ok := false;
      if i > 0 && b <= List.nth bounds (i - 1) then ok := false)
    bounds;
  if not !ok then
    invalid_arg "Metrics.histogram: bounds must be finite and strictly increasing"

let histogram reg ?(help = "") ?(unit_ = "") ?(labels = []) ~buckets name :
    histogram =
  validate_bounds buckets;
  let bounds = Array.of_list buckets in
  register reg ~help ~unit_ ~labels name
    ~extract:(function
      | Dhist d when d.hbounds = bounds -> Some { h_mu = reg.mu; h_d = d }
      | Dhist _ | Dcounter _ | Dgauge _ -> None)
    ~build:(fun () ->
      let d =
        {
          hbounds = bounds;
          hcounts = Array.make (Array.length bounds + 1) 0;
          hsum = 0.;
          hcount = 0;
        }
      in
      (Dhist d, { h_mu = reg.mu; h_d = d }))

let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe (h : histogram) v =
  Mutex.lock h.h_mu;
  let d = h.h_d in
  let i = bucket_index d.hbounds v in
  d.hcounts.(i) <- d.hcounts.(i) + 1;
  d.hsum <- d.hsum +. v;
  d.hcount <- d.hcount + 1;
  Mutex.unlock h.h_mu

let time h f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f

let seconds_buckets =
  [ 0.0001; 0.001; 0.005; 0.01; 0.05; 0.1; 0.5; 1.; 5.; 10.; 60. ]

let size_buckets = [ 1.; 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. ]

type hist_snapshot = {
  bounds : float list;
  bucket_counts : int list;
  sum : float;
  count : int;
}

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

type sample = {
  name : string;
  labels : labels;
  help : string;
  unit_ : string;
  value : value;
}

let snapshot_value = function
  | Dcounter a -> Counter (Atomic.get a)
  | Dgauge d -> Gauge d.g
  | Dhist d ->
      (* raw per-bucket counts -> cumulative (Prometheus convention) *)
      let acc = ref 0 in
      let cumulative =
        Array.to_list (Array.map (fun c -> acc := !acc + c; !acc) d.hcounts)
      in
      Histogram
        {
          bounds = Array.to_list d.hbounds;
          bucket_counts = cumulative;
          sum = d.hsum;
          count = d.hcount;
        }

let samples reg =
  Mutex.lock reg.mu;
  let all =
    Hashtbl.fold
      (fun k m acc ->
        ( k,
          {
            name = m.m_name;
            labels = m.m_labels;
            help = m.m_help;
            unit_ = m.m_unit;
            value = snapshot_value m.m_data;
          } )
        :: acc)
      reg.tbl []
  in
  Mutex.unlock reg.mu;
  List.map snd (List.sort (fun (a, _) (b, _) -> String.compare a b) all)

let value reg ?(labels = []) name =
  let k = key name (canon_labels labels) in
  Mutex.lock reg.mu;
  let v =
    Option.map (fun m -> snapshot_value m.m_data) (Hashtbl.find_opt reg.tbl k)
  in
  Mutex.unlock reg.mu;
  v

let merge_into ~into src =
  List.iter
    (fun s ->
      match s.value with
      | Counter v ->
          inc (counter into ~help:s.help ~unit_:s.unit_ ~labels:s.labels s.name) v
      | Gauge v ->
          let g = gauge into ~help:s.help ~unit_:s.unit_ ~labels:s.labels s.name in
          Mutex.lock g.g_mu;
          g.g_d.g <- Float.max g.g_d.g v;
          Mutex.unlock g.g_mu
      | Histogram h ->
          let hm =
            histogram into ~help:s.help ~unit_:s.unit_ ~labels:s.labels
              ~buckets:h.bounds s.name
          in
          (* de-cumulate the snapshot back into raw bucket increments *)
          let prev = ref 0 in
          let raw = List.map (fun c -> let d = c - !prev in prev := c; d) h.bucket_counts in
          Mutex.lock hm.h_mu;
          List.iteri (fun i d -> hm.h_d.hcounts.(i) <- hm.h_d.hcounts.(i) + d) raw;
          hm.h_d.hsum <- hm.h_d.hsum +. h.sum;
          hm.h_d.hcount <- hm.h_d.hcount + h.count;
          Mutex.unlock hm.h_mu)
    (samples src)

let reset reg =
  Mutex.lock reg.mu;
  Hashtbl.iter
    (fun _ m ->
      match m.m_data with
      | Dcounter a -> Atomic.set a 0
      | Dgauge d -> d.g <- 0.
      | Dhist d ->
          Array.fill d.hcounts 0 (Array.length d.hcounts) 0;
          d.hsum <- 0.;
          d.hcount <- 0)
    reg.tbl;
  Mutex.unlock reg.mu

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let escape = Trace.escape
let json_float = Trace.json_float

let add_labels buf labels =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ",";
      Printf.bprintf buf "\"%s\":\"%s\"" (escape k) (escape v))
    labels;
  Buffer.add_string buf "}"

let add_sample buf s =
  Printf.bprintf buf "{\"name\":\"%s\",\"labels\":" (escape s.name);
  add_labels buf s.labels;
  Printf.bprintf buf ",\"unit\":\"%s\",\"help\":\"%s\"" (escape s.unit_)
    (escape s.help);
  match s.value with
  | Counter v -> Printf.bprintf buf ",\"type\":\"counter\",\"value\":%d}" v
  | Gauge v ->
      Printf.bprintf buf ",\"type\":\"gauge\",\"value\":%s}" (json_float v)
  | Histogram h ->
      Printf.bprintf buf ",\"type\":\"histogram\",\"sum\":%s,\"count\":%d"
        (json_float h.sum) h.count;
      Buffer.add_string buf ",\"buckets\":[";
      let n = List.length h.bucket_counts in
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_string buf ",";
          let le =
            if i = n - 1 then "\"+Inf\"" else json_float (List.nth h.bounds i)
          in
          Printf.bprintf buf "{\"le\":%s,\"count\":%d}" le c)
        h.bucket_counts;
      Buffer.add_string buf "]}"

let to_json reg =
  let ss = samples reg in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"netcovMetricsVersion\": %d,\n" schema_version;
  Buffer.add_string buf "  \"metrics\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string buf "    ";
      add_sample buf s;
      if i < List.length ss - 1 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n")
    ss;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write reg path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json reg))
