type arg = S of string | I of int | F of float | B of bool

let schema_version = 1

type event = {
  ev_name : string;
  ev_cat : string;
  ev_phase : [ `Complete | `Instant ];
  ev_ts_us : float;
  ev_dur_us : float;
  ev_tid : int;
  ev_seq : int;
  ev_args : (string * arg) list;
}

let dummy =
  {
    ev_name = "";
    ev_cat = "";
    ev_phase = `Instant;
    ev_ts_us = 0.;
    ev_dur_us = 0.;
    ev_tid = 0;
    ev_seq = 0;
    ev_args = [];
  }

(* Start-order sequence: assigned when a span opens (not when it is
   pushed at close), so sorting by it puts parents before children even
   when their start timestamps tie at clock resolution. *)
let seq = Atomic.make 0

(* One process-wide collector. The ring is mutated under [mu]; the
   enabled flag is a separate atomic so the disabled fast path of
   [with_span] is a single load, no lock. *)
type state = {
  mutable buf : event array;
  mutable len : int;  (* valid entries *)
  mutable pos : int;  (* oldest entry when the ring is full *)
  mutable lost : int;
  mutable t0 : float;  (* epoch for relative timestamps *)
}

let mu = Mutex.create ()
let st = { buf = [||]; len = 0; pos = 0; lost = 0; t0 = 0. }
let on = Atomic.make false
let enabled () = Atomic.get on
let default_capacity = 65536

let enable ?(capacity = default_capacity) () =
  let capacity = max 16 capacity in
  Mutex.lock mu;
  if Array.length st.buf <> capacity then st.buf <- Array.make capacity dummy;
  st.len <- 0;
  st.pos <- 0;
  st.lost <- 0;
  st.t0 <- Unix.gettimeofday ();
  Atomic.set seq 0;
  Mutex.unlock mu;
  Atomic.set on true

let disable () = Atomic.set on false

let clear () =
  Mutex.lock mu;
  st.len <- 0;
  st.pos <- 0;
  st.lost <- 0;
  st.t0 <- Unix.gettimeofday ();
  Atomic.set seq 0;
  Mutex.unlock mu

(* [t0] is only written under [mu] by enable/clear; a racy read here can
   at worst skew timestamps of events recorded concurrently with an
   enable, never corrupt memory. *)
let now_us () = (Unix.gettimeofday () -. st.t0) *. 1e6

let push ev =
  Mutex.lock mu;
  let cap = Array.length st.buf in
  if cap = 0 then st.lost <- st.lost + 1 (* recording before any enable *)
  else if st.len < cap then begin
    st.buf.(st.len) <- ev;
    st.len <- st.len + 1
  end
  else begin
    st.buf.(st.pos) <- ev;
    st.pos <- (st.pos + 1) mod cap;
    st.lost <- st.lost + 1
  end;
  Mutex.unlock mu

let tid () = (Domain.self () :> int)

let with_span ?(cat = "netcov") ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let s = Atomic.fetch_and_add seq 1 in
    let t_start = now_us () in
    Fun.protect
      ~finally:(fun () ->
        let t_end = now_us () in
        push
          {
            ev_name = name;
            ev_cat = cat;
            ev_phase = `Complete;
            ev_ts_us = t_start;
            ev_dur_us = t_end -. t_start;
            ev_tid = tid ();
            ev_seq = s;
            ev_args = args;
          })
      f
  end

let instant ?(cat = "netcov") ?(args = []) name =
  if Atomic.get on then
    push
      {
        ev_name = name;
        ev_cat = cat;
        ev_phase = `Instant;
        ev_ts_us = now_us ();
        ev_dur_us = 0.;
        ev_tid = tid ();
        ev_seq = Atomic.fetch_and_add seq 1;
        ev_args = args;
      }

let events () =
  Mutex.lock mu;
  let cap = Array.length st.buf in
  let n = st.len in
  let snapshot =
    Array.init n (fun i ->
        if n < cap then st.buf.(i) else st.buf.((st.pos + i) mod cap))
  in
  Mutex.unlock mu;
  List.stable_sort
    (fun a b ->
      match Float.compare a.ev_ts_us b.ev_ts_us with
      | 0 -> Int.compare a.ev_seq b.ev_seq
      | c -> c)
    (Array.to_list snapshot)

let dropped () =
  Mutex.lock mu;
  let n = st.lost in
  Mutex.unlock mu;
  n

let find_spans name =
  List.filter
    (fun e -> e.ev_phase = `Complete && String.equal e.ev_name name)
    (events ())

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON export                                      *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_nan f then "0"
  else if f = Float.infinity then "1e308"
  else if f = Float.neg_infinity then "-1e308"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let arg_value = function
  | S s -> "\"" ^ escape s ^ "\""
  | I i -> string_of_int i
  | F f -> json_float f
  | B b -> if b then "true" else "false"

let add_args buf args =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ",";
      Printf.bprintf buf "\"%s\":%s" (escape k) (arg_value v))
    args;
  Buffer.add_string buf "}"

let add_event buf e =
  Printf.bprintf buf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\""
    (escape e.ev_name) (escape e.ev_cat)
    (match e.ev_phase with `Complete -> "X" | `Instant -> "i");
  Printf.bprintf buf ",\"pid\":1,\"tid\":%d,\"ts\":%.3f" e.ev_tid e.ev_ts_us;
  (match e.ev_phase with
  | `Complete -> Printf.bprintf buf ",\"dur\":%.3f" e.ev_dur_us
  | `Instant -> Buffer.add_string buf ",\"s\":\"t\"");
  Buffer.add_string buf ",\"args\":";
  add_args buf e.ev_args;
  Buffer.add_string buf "}"

let to_json () =
  let evs = events () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Printf.bprintf buf "  \"netcovTraceVersion\": %d,\n" schema_version;
  Buffer.add_string buf "  \"displayTimeUnit\": \"ms\",\n";
  Printf.bprintf buf "  \"droppedEvents\": %d,\n" (dropped ());
  Buffer.add_string buf "  \"traceEvents\": [\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf "    ";
      add_event buf e;
      if i < List.length evs - 1 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n")
    evs;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ()))
