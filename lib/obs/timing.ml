let now = Unix.gettimeofday

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

type section = {
  sname : string;
  mutable total_s : float;
  mutable runs : int;
}

let make sname = { sname; total_s = 0.; runs = 0 }
let name s = s.sname

let add s dt =
  s.total_s <- s.total_s +. dt;
  s.runs <- s.runs + 1

let record s f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> add s (now () -. t0)) f

let total s = s.total_s
let count s = s.runs

let reset s =
  s.total_s <- 0.;
  s.runs <- 0
