(** Metrics registry: named counters, gauges and fixed-bucket
    histograms for the coverage pipeline.

    A metric is identified by its name plus a canonicalized label set
    (labels are sorted by key at registration). Registering the same
    identity twice returns the {e same} underlying metric, so
    instrumented modules can register at load time without
    coordination; re-registering with a different kind (or different
    histogram buckets) raises [Invalid_argument].

    Concurrency: counters are lock-free atomics; gauge and histogram
    updates take the owning registry's mutex. All instrumentation in
    this repo records into the process-wide {!default} registry, which
    is therefore safe to update from any domain. Per-domain registries
    plus {!merge_into} are available when contention matters.

    Metrics never change computed results — removing every recording
    call leaves all coverage reports byte-identical. Metric names,
    units and semantics are cataloged in [docs/OBSERVABILITY.md]. *)

(** A label set: [(key, value)] pairs, canonicalized (sorted by key)
    at registration. *)
type labels = (string * string) list

(** A registry of metrics. *)
type registry

(** Version of the exported JSON envelope (the
    ["netcovMetricsVersion"] field). *)
val schema_version : int

(** [create ()] is a fresh empty registry. *)
val create : unit -> registry

(** The process-wide registry every built-in instrumentation point
    records into. *)
val default : registry

(** A monotonically increasing integer metric. *)
type counter

(** A floating-point metric set to the latest observed value. *)
type gauge

(** A fixed-bucket distribution of float observations. *)
type histogram

(** [counter reg name] registers (or retrieves) the counter [name]
    with the given [labels] in [reg]. [help] and [unit_] document the
    metric in exports; the first registration's values win. *)
val counter :
  registry -> ?help:string -> ?unit_:string -> ?labels:labels -> string -> counter

(** [inc c n] adds [n] to the counter (lock-free). *)
val inc : counter -> int -> unit

(** [gauge reg name] registers (or retrieves) a gauge. *)
val gauge :
  registry -> ?help:string -> ?unit_:string -> ?labels:labels -> string -> gauge

(** [set g v] sets the gauge to [v]. *)
val set : gauge -> float -> unit

(** [histogram reg ~buckets name] registers (or retrieves) a histogram
    with the given upper-bound [buckets], which must be finite and
    strictly increasing (an implicit [+Inf] bucket is always added).
    Raises [Invalid_argument] on invalid bounds or if [name] is
    already registered with different bounds. *)
val histogram :
  registry ->
  ?help:string ->
  ?unit_:string ->
  ?labels:labels ->
  buckets:float list ->
  string ->
  histogram

(** [observe h v] records [v] into its bucket and the running
    sum/count. *)
val observe : histogram -> float -> unit

(** [time h f] runs [f ()] and observes its wall-clock duration in
    seconds into [h] — also when [f] raises, so error paths show up in
    latency histograms (the serve layer's per-route
    [http.request_seconds] relies on this). *)
val time : histogram -> (unit -> 'a) -> 'a

(** Default bucket bounds for wall-clock durations, in seconds
    (100 µs .. 60 s). *)
val seconds_buckets : float list

(** Default bucket bounds for object counts / sizes (1 .. 1e6,
    decades). *)
val size_buckets : float list

(** Snapshot of one histogram. [bucket_counts] is {e cumulative}
    Prometheus-style: entry [i] counts observations [<= bounds[i]];
    the final extra entry is the [+Inf] bucket and equals [count]. *)
type hist_snapshot = {
  bounds : float list;
  bucket_counts : int list;  (** length = [List.length bounds + 1] *)
  sum : float;
  count : int;
}

(** A snapshot of one metric's value. *)
type value = Counter of int | Gauge of float | Histogram of hist_snapshot

(** A snapshot of one registered metric. *)
type sample = {
  name : string;
  labels : labels;
  help : string;
  unit_ : string;
  value : value;
}

(** [samples reg] is a consistent snapshot of every metric in [reg],
    sorted by name then labels (deterministic). *)
val samples : registry -> sample list

(** [value reg name] is the current value of the metric with that
    name/label identity, or [None] if unregistered. *)
val value : registry -> ?labels:labels -> string -> value option

(** [merge_into ~into src] folds a snapshot of [src] into [into]:
    counters and histogram buckets/sums add; gauges keep the maximum
    (gauges in this codebase are non-negative sizes). Metrics missing
    from [into] are registered with [src]'s metadata. Raises
    [Invalid_argument] on a kind or bucket-bound mismatch. *)
val merge_into : into:registry -> registry -> unit

(** [reset reg] zeroes every metric's value, keeping registrations. *)
val reset : registry -> unit

(** [to_json reg] renders a versioned JSON document of {!samples}
    (schema in [docs/OBSERVABILITY.md]). Deterministic for a given
    snapshot. *)
val to_json : registry -> string

(** [write reg path] writes {!to_json} to [path]. *)
val write : registry -> string -> unit
