open Netcov_config
open Netcov_sim
open Netcov_core
module M = Netcov_obs.Metrics

let src = Logs.Src.create "netcov.incr" ~doc:"incremental coverage engine"

module Log = (val Logs.src_log src : Logs.LOG)

let m_updates =
  M.counter M.default ~help:"incremental engine passes (create or update)"
    ~unit_:"passes" "incr.updates"

let m_dirty =
  M.counter M.default
    ~help:"stored cones invalidated by configuration changes" ~unit_:"cones"
    "incr.dirty_cones"

let m_reused =
  M.counter M.default ~help:"cone label results reused across an update"
    ~unit_:"cones" "incr.reused_cones"

let m_evicted_sim =
  M.counter M.default ~help:"sim-cache entries evicted on update"
    ~unit_:"entries" "incr.evicted.sim"

let m_evicted_labels =
  M.counter M.default ~help:"cone label entries evicted on update"
    ~unit_:"entries" "incr.evicted.labels"

let m_reuse_ratio =
  M.gauge M.default
    ~help:"reused / (reused + relabeled) cones of the last incremental pass"
    ~unit_:"ratio" "incr.reuse_ratio"

(* ------------------------------------------------------------------ *)
(* Cone signatures.

   A stored label result may be reused only if relabeling would compute
   the same thing. Label.run_cone is a pure function of the cone's
   structure: node kinds, the facts at fact nodes (config facts carry
   element ids) and the parent wiring. The signature captures exactly
   that, with nodes in a deterministic discovery order and parents as
   in-cone discovery indices, so two signatures are equal iff the cones
   are isomorphic as labeled graphs — config ids compared through the
   update's old → new translation. This is what makes reuse robust
   against the state-propagation channel the config diff cannot see
   (e.g. a best-path flip upstream changes which facts feed a cone even
   though no element inside it changed): any such change alters the
   materialized cone and breaks the signature.

   Signatures are the slow path. Materialization is deterministic, so
   across an update most of the new graph is *positionally* identical
   to the old one — same node id, same kind, same fact (modulo the id
   translation), same parent ids. The per-test suspect closure below
   marks every node with at least one positionally-different ancestor;
   a cone whose root is outside that closure is ancestor-closed inside
   the identical region and is reused without touching its signature.
   Signatures are therefore computed lazily, and only for roots inside
   the suspect closure. *)

type sig_node = { sn_fact : Fact.t option; sn_parents : int array }

let cone_signature g root =
  let idx = Hashtbl.create 256 in
  let rev_order = ref [] in
  let n = ref 0 in
  let stack = ref [ root ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | id :: rest ->
        stack := rest;
        if not (Hashtbl.mem idx id) then begin
          Hashtbl.add idx id !n;
          incr n;
          rev_order := id :: !rev_order;
          Ifg.iter_parents g id (fun p ->
              if not (Hashtbl.mem idx p) then stack := p :: !stack)
        end
  done;
  let order = Array.of_list (List.rev !rev_order) in
  Array.map
    (fun id ->
      let ps = ref [] in
      (* cones are ancestor-closed, so every parent is indexed *)
      Ifg.iter_parents g id (fun p -> ps := Hashtbl.find idx p :: !ps);
      {
        sn_fact =
          (match Ifg.kind g id with
          | Ifg.N_fact f -> Some f
          | Ifg.N_disj -> None);
        sn_parents = Array.of_list (List.rev !ps);
      })
    order

(* Translate an old-registry fact into the new registry; [None] when it
   mentions a removed element. *)
let remap_fact id_map f =
  match f with
  | Fact.F_config oid ->
      if oid >= 0 && oid < Array.length id_map && id_map.(oid) >= 0 then
        Some (Fact.F_config id_map.(oid))
      else None
  | f -> Some f

let sig_equal ~id_map old_sig new_sig =
  Array.length old_sig = Array.length new_sig
  &&
  try
    Array.iteri
      (fun i (on : sig_node) ->
        let nn = new_sig.(i) in
        if on.sn_parents <> nn.sn_parents then raise Exit;
        match (on.sn_fact, nn.sn_fact) with
        | None, None -> ()
        | Some fo, Some fn -> (
            match remap_fact id_map fo with
            | Some fo' when Fact.equal fo' fn -> ()
            | _ -> raise Exit)
        | _ -> raise Exit)
      old_sig;
    true
  with Exit -> false

(* Positional comparison of the old and the new graph of one test.
   Returns [(clean, tainted)]: [clean] when every new node is
   positionally identical to the old node with the same id; otherwise
   [tainted] is the descendant closure (Ifg.reverse_reachable) of the
   positionally-differing nodes, i.e. exactly the nodes with a
   differing ancestor. A root outside [tainted] has an ancestor cone
   that is node-for-node the old cone, so its stored label result is
   reused with no signature work at all. *)
let suspect_closure ~id_map g_old g_new =
  let n_new = Ifg.n_nodes g_new in
  let n_old = Ifg.n_nodes g_old in
  let seeds = ref [] in
  for j = 0 to n_new - 1 do
    let same =
      j < n_old
      && (match (Ifg.kind g_old j, Ifg.kind g_new j) with
         | Ifg.N_disj, Ifg.N_disj -> true
         | Ifg.N_fact fo, Ifg.N_fact fn -> (
             match remap_fact id_map fo with
             | Some fo' -> Fact.equal fo' fn
             | None -> false)
         | _ -> false)
      && Ifg.parents g_old j = Ifg.parents g_new j
    in
    if not same then seeds := j :: !seeds
  done;
  if !seeds = [] then (true, [||])
  else (false, Ifg.reverse_reachable g_new !seeds)

(* ------------------------------------------------------------------ *)

type cone_entry = {
  ce_sig : sig_node array Lazy.t;  (* forced only for suspect roots *)
  ce_node : Ifg.node_id;  (* root node in the owning test's graph *)
  ce_covered : Element.Id_set.t;  (* session-current registry ids *)
  ce_strong : Element.Id_set.t;
}

type test_state = {
  ts_graph : Ifg.t;
  ts_cones : cone_entry Fact.Tbl.t;
  (* aggregate label result of the whole test (before the tested
     control-plane elements are forced strong), for wholesale reuse
     when an update leaves the test's graph untouched *)
  ts_strong : Element.Id_set.t;
  ts_weak : Element.Id_set.t;
}

type session = {
  mutable st : Stable_state.t;
  mutable reg : Registry.t;
  mutable tests : test_state list;
  mutable testeds : Netcov.tested list;
  mutable reports : Netcov.report list;
  cache : Rules.sim_cache;
  mutable rep : Netcov.report;
  mutable diff : Registry_diff.t option;
}

type stats = {
  s_changed : int;
  s_added : int;
  s_removed : int;
  s_dirty_cones : int;
  s_reused : int;
  s_relabeled : int;
  s_full_fallbacks : int;
  s_evicted_sim : int;
  s_evicted_labels : int;
  s_sim_hits : int;
  s_sim_misses : int;
  s_reuse_ratio : float;
  s_seconds : float;
}

(* Mutable accumulator threaded through one pass. *)
type acc = {
  mutable a_reused : int;
  mutable a_relabeled : int;
  mutable a_fallbacks : int;
  mutable a_hits : int;
  mutable a_misses : int;
}

let remap_set id_map s = Element.Id_set.map (fun oid -> id_map.(oid)) s

let id_map_is_identity m =
  try
    Array.iteri (fun i v -> if v <> i then raise Exit) m;
    true
  with Exit -> false

(* One test against one state: re-materialize (warm sim cache), then
   splice stored cone labels where the materialized graph proves them
   still valid and relabel the rest. [same_tested] says the test's
   tested facts are unchanged since the stored pass, which unlocks
   wholesale reuse when the whole graph is positionally identical.

   Relabeling ([Label.run_cone] / the capped [Label.run] fallback) runs
   in the calling domain's persistent BDD arena: across warm updates of
   a long-lived session (netcov serve) the hash-consed node store and
   apply cache stay hot, and the arena self-trims at its watermark so
   an idle warm session holds a bounded BDD footprint rather than the
   union of everything it ever labeled (lib/core/label.mli). *)
let run_test cache state reg ~old ~id_map ~same_tested ~dead acc
    (tested : Netcov.tested) =
  let t0 = Timing.now () in
  let ctx = Rules.make_ctx ~cache state in
  let g, tested_ids, mstats = Materialize.run ctx ~tested:tested.Netcov.dp_facts in
  acc.a_hits <- acc.a_hits + mstats.Materialize.sim_cache_hits;
  acc.a_misses <- acc.a_misses + mstats.Materialize.sim_cache_misses;
  let taint =
    match (old, id_map) with
    | Some (ts : test_state), Some id_map ->
        Some (suspect_closure ~id_map ts.ts_graph g)
    | _ -> None
  in
  let lt0 = Timing.now () in
  let wholesale =
    (* identical graph over identical tested facts: the previous pass
       would be recomputed verbatim, splice it without per-cone work *)
    match (old, id_map, taint) with
    | Some ts, Some id_map, Some (true, _)
      when same_tested && Ifg.n_nodes ts.ts_graph = Ifg.n_nodes g ->
        Some (ts, id_map)
    | _ -> None
  in
  let finish ~cones ~strong ~weak ~vars =
    let coverage =
      Coverage.with_strong
        (Coverage.of_sets reg ~strong ~weak)
        tested.Netcov.cp_elements
    in
    let label_s = Timing.now () -. lt0 in
    let total_s = Timing.now () -. t0 in
    let report =
      {
        Netcov.coverage;
        timing =
          {
            Netcov.total_s;
            cpu_total_s = total_s;
            materialize_s = mstats.Materialize.rule_seconds;
            sim_s = mstats.Materialize.sim_seconds;
            label_s;
            sim_count = mstats.Materialize.sim_count;
            sim_cache_hits = mstats.Materialize.sim_cache_hits;
            sim_cache_misses = mstats.Materialize.sim_cache_misses;
            ifg_nodes = mstats.Materialize.nodes;
            ifg_edges = mstats.Materialize.edges;
            bdd_vars = vars;
          };
        dead;
      }
    in
    (report, { ts_graph = g; ts_cones = cones; ts_strong = strong; ts_weak = weak })
  in
  match wholesale with
  | Some (ts, id_map) ->
      acc.a_reused <- acc.a_reused + Fact.Tbl.length ts.ts_cones;
      let identity = id_map_is_identity id_map in
      let cones =
        if identity then ts.ts_cones
        else begin
          let t = Fact.Tbl.create (max 16 (Fact.Tbl.length ts.ts_cones)) in
          Fact.Tbl.iter
            (fun rf e ->
              Fact.Tbl.replace t rf
                {
                  e with
                  ce_covered = remap_set id_map e.ce_covered;
                  ce_strong = remap_set id_map e.ce_strong;
                })
            ts.ts_cones;
          t
        end
      in
      let strong =
        if identity then ts.ts_strong else remap_set id_map ts.ts_strong
      in
      let weak = if identity then ts.ts_weak else remap_set id_map ts.ts_weak in
      finish ~cones ~strong ~weak ~vars:0
  | None ->
      let new_cones = Fact.Tbl.create 64 in
      let covered = ref Element.Id_set.empty in
      let strong = ref Element.Id_set.empty in
      let capped = ref false in
      let vars = ref 0 in
      let seen = Hashtbl.create 16 in
      List.iter
        (fun root ->
          if not (Hashtbl.mem seen root) then begin
            Hashtbl.add seen root ();
            match Ifg.kind g root with
            | Ifg.N_disj -> ()
            | Ifg.N_fact rf -> (
                let stored =
                  match (old, id_map) with
                  | Some (ts : test_state), Some id_map -> (
                      match Fact.Tbl.find_opt ts.ts_cones rf with
                      | Some e -> Some (e, id_map)
                      | None -> None)
                  | _ -> None
                in
                (* the new signature is computed at most once, and only
                   when a stored candidate forces the comparison *)
                let nsig = ref None in
                let new_sig () =
                  match !nsig with
                  | Some s -> s
                  | None ->
                      let s = cone_signature g root in
                      nsig := Some s;
                      s
                in
                let reuse =
                  match (stored, taint) with
                  | Some (e, id_map), Some (clean, tainted) ->
                      if (clean || not tainted.(root)) && e.ce_node = root then
                        Some (e, id_map)
                      else if
                        sig_equal ~id_map (Lazy.force e.ce_sig) (new_sig ())
                      then Some (e, id_map)
                      else None
                  | Some (e, id_map), None ->
                      if sig_equal ~id_map (Lazy.force e.ce_sig) (new_sig ())
                      then Some (e, id_map)
                      else None
                  | None, _ -> None
                in
                let entry_sig () =
                  match !nsig with
                  | Some s -> Lazy.from_val s
                  | None -> lazy (cone_signature g root)
                in
                match reuse with
                | Some (e, id_map) ->
                    acc.a_reused <- acc.a_reused + 1;
                    let cov = remap_set id_map e.ce_covered in
                    let str = remap_set id_map e.ce_strong in
                    Fact.Tbl.replace new_cones rf
                      {
                        ce_sig = entry_sig ();
                        ce_node = root;
                        ce_covered = cov;
                        ce_strong = str;
                      };
                    covered := Element.Id_set.union !covered cov;
                    strong := Element.Id_set.union !strong str
                | None ->
                    acc.a_relabeled <- acc.a_relabeled + 1;
                    let r = Label.run_cone g ~root in
                    vars := !vars + r.Label.c_vars;
                    if r.Label.c_capped then capped := true
                    else
                      Fact.Tbl.replace new_cones rf
                        {
                          ce_sig = entry_sig ();
                          ce_node = root;
                          ce_covered = r.Label.c_covered;
                          ce_strong = r.Label.c_strong;
                        };
                    covered := Element.Id_set.union !covered r.Label.c_covered;
                    strong := Element.Id_set.union !strong r.Label.c_strong)
          end)
        tested_ids;
      let strong_set, weak_set =
        if !capped then begin
          (* A capped cone's isolated labeling may diverge from the
             global pass; force the exact global pass for this test and
             cache nothing (docs/INCREMENTAL.md, "when a full run is
             forced"). *)
          acc.a_fallbacks <- acc.a_fallbacks + 1;
          Fact.Tbl.reset new_cones;
          let l = Label.run g ~tested:tested_ids in
          vars := l.Label.vars;
          (l.Label.strong, l.Label.weak)
        end
        else (!strong, Element.Id_set.diff !covered !strong)
      in
      finish ~cones:new_cones ~strong:strong_set ~weak:weak_set ~vars:!vars

let finish_stats ~t0 ~d ~dirty ~evicted_sim ~evicted_labels acc =
  let reuse_ratio =
    let total = acc.a_reused + acc.a_relabeled in
    if total = 0 then 0. else float_of_int acc.a_reused /. float_of_int total
  in
  M.inc m_updates 1;
  M.inc m_dirty dirty;
  M.inc m_reused acc.a_reused;
  M.inc m_evicted_sim evicted_sim;
  M.inc m_evicted_labels evicted_labels;
  M.set m_reuse_ratio reuse_ratio;
  let changed, added, removed =
    match d with
    | None -> (0, 0, 0)
    | Some (d : Registry_diff.t) ->
        ( List.length d.Registry_diff.changed,
          List.length d.Registry_diff.added,
          List.length d.Registry_diff.removed )
  in
  {
    s_changed = changed;
    s_added = added;
    s_removed = removed;
    s_dirty_cones = dirty;
    s_reused = acc.a_reused;
    s_relabeled = acc.a_relabeled;
    s_full_fallbacks = acc.a_fallbacks;
    s_evicted_sim = evicted_sim;
    s_evicted_labels = evicted_labels;
    s_sim_hits = acc.a_hits;
    s_sim_misses = acc.a_misses;
    s_reuse_ratio = reuse_ratio;
    s_seconds = Timing.now () -. t0;
  }

let run_suite cache state reg ~olds ~old_testeds ~id_map ~reuse_test acc testeds
    =
  let dead = Deadcode.analyze reg in
  List.mapi
    (fun i tested ->
      match reuse_test ~dead i tested with
      | Some r -> r
      | None ->
          let old =
            match olds with
            | Some arr when i < Array.length arr -> Some arr.(i)
            | _ -> None
          in
          let same_tested =
            match old_testeds with
            | Some arr when i < Array.length arr -> arr.(i) = tested
            | _ -> false
          in
          run_test cache state reg ~old ~id_map ~same_tested ~dead acc tested)
    testeds

let no_reuse ~dead:_ _ _ = None

let create ?(sim_canon = true) state testeds =
  let t0 = Timing.now () in
  let cache = Rules.create_sim_cache ~canonical:sim_canon () in
  let reg = Stable_state.registry state in
  let acc =
    { a_reused = 0; a_relabeled = 0; a_fallbacks = 0; a_hits = 0; a_misses = 0 }
  in
  let results =
    run_suite cache state reg ~olds:None ~old_testeds:None ~id_map:None
      ~reuse_test:no_reuse acc testeds
  in
  let wall = Timing.now () -. t0 in
  let rep =
    Netcov.merge_reports ~wall_s:wall ~registry:reg (List.map fst results)
  in
  let s =
    {
      st = state;
      reg;
      tests = List.map snd results;
      testeds;
      reports = List.map fst results;
      cache;
      rep;
      diff = None;
    }
  in
  let stats =
    finish_stats ~t0 ~d:None ~dirty:0 ~evicted_sim:0 ~evicted_labels:0 acc
  in
  (s, stats)

(* Cone invalidation: walk each old graph forward (child edges) from
   the changed/removed elements' config nodes; every stored cone whose
   root lies in that descendant closure could have been derived through
   a changed element, so its label result is evicted eagerly. *)
let evict_dirty ts dirty_old_ids =
  let seeds =
    List.filter_map
      (fun oid -> Ifg.find ts.ts_graph (Fact.F_config oid))
      dirty_old_ids
  in
  if seeds = [] then 0
  else begin
    let dirty = Ifg.reverse_reachable ts.ts_graph seeds in
    let doomed = ref [] in
    Fact.Tbl.iter
      (fun rf e -> if dirty.(e.ce_node) then doomed := rf :: !doomed)
      ts.ts_cones;
    List.iter (fun rf -> Fact.Tbl.remove ts.ts_cones rf) !doomed;
    List.length !doomed
  end

(* ------------------------------------------------------------------ *)
(* The whole-update fast path.

   A configuration edit that provably changes no behavior needs no
   re-materialization at all. The witness has three independent legs:

   - every changed element belongs to a class that influences the
     analysis only through policy-chain evaluation (clauses and the
     match lists they consult) — no interface, session, origination,
     static-route or ACL semantics can have moved;
   - replaying every cached chain evaluation of the changed devices
     against their new configuration reproduces every result exactly
     (Rules.sim_cache_revalidate_hosts dropped nothing); and
   - the new stable state's RIBs, hosts and sessions are equal to the
     old one's, so the same evaluations feed the same fixed point.

   Under that witness a test whose tested facts are unchanged would
   re-materialize its exact old graph and relabel it to its exact old
   result, so the stored pass is spliced wholesale. *)

let reusable_etype = function
  | Element.Route_policy_clause | Element.Prefix_list | Element.Community_list
  | Element.As_path_list ->
      true
  | _ -> false

let state_unchanged st_old st_new =
  Stable_state.all_hosts st_old = Stable_state.all_hosts st_new
  && Stable_state.internal_hosts st_old = Stable_state.internal_hosts st_new
  && Stable_state.edges st_old = Stable_state.edges st_new
  && List.for_all
       (fun h ->
         Rib.table_entries (Stable_state.main_rib st_old h)
         = Rib.table_entries (Stable_state.main_rib st_new h)
         && Rib.table_entries (Stable_state.bgp_rib st_old h)
            = Rib.table_entries (Stable_state.bgp_rib st_new h)
         && Rib.table_entries (Stable_state.igp_rib st_old h)
            = Rib.table_entries (Stable_state.igp_rib st_new h))
       (Stable_state.internal_hosts st_old)

let update s state testeds =
  let t0 = Timing.now () in
  let reg = Stable_state.registry state in
  let d = Registry_diff.diff ~old:s.reg reg in
  let changed_devs = Hashtbl.create 16 in
  List.iter
    (fun h -> Hashtbl.replace changed_devs h ())
    d.Registry_diff.devices_changed;
  (* Invalidate the sim-memo cache precisely: replay each cached
     evaluation of a changed device and drop only the ones whose result
     (or canonical key space) actually moved. *)
  let _checked, dropped =
    Rules.sim_cache_revalidate_hosts s.cache state (Hashtbl.mem changed_devs)
  in
  let evicted_sim = dropped in
  let fast =
    d.Registry_diff.added = []
    && d.Registry_diff.removed = []
    && id_map_is_identity d.Registry_diff.id_map
    && List.for_all
         (fun (e : Registry_diff.entry) ->
           reusable_etype e.Registry_diff.e_key.Element.etype)
         d.Registry_diff.changed
    && dropped = 0
    && state_unchanged s.st state
  in
  let olds = Array.of_list s.tests in
  let old_testeds = Array.of_list s.testeds in
  let old_reports = Array.of_list s.reports in
  let n_new = List.length testeds in
  let dirty = ref 0 in
  if not fast then begin
    (* Cone invalidation (eager eviction): under the fast-path witness
       the invalidated set is provably behavior-empty, so the stored
       cones survive; otherwise every cone derived through a changed or
       removed element loses its label result here. *)
    let dirty_old_ids =
      List.map (fun e -> e.Registry_diff.e_old_id) d.Registry_diff.changed
      @ List.map (fun e -> e.Registry_diff.e_old_id) d.Registry_diff.removed
    in
    Array.iteri
      (fun i ts ->
        if i < n_new then dirty := !dirty + evict_dirty ts dirty_old_ids)
      olds
  end;
  (* Tests past the end of the new suite are dropped with their cones. *)
  let stale = ref 0 in
  Array.iteri
    (fun i ts -> if i >= n_new then stale := !stale + Fact.Tbl.length ts.ts_cones)
    olds;
  let evicted_labels = !dirty + !stale in
  let acc =
    { a_reused = 0; a_relabeled = 0; a_fallbacks = 0; a_hits = 0; a_misses = 0 }
  in
  let reuse_test ~dead i tested =
    if
      fast
      && i < Array.length olds
      && i < Array.length old_testeds
      && old_testeds.(i) = tested
    then begin
      let ts = olds.(i) in
      acc.a_reused <- acc.a_reused + Fact.Tbl.length ts.ts_cones;
      let coverage =
        Coverage.with_strong
          (Coverage.of_sets reg ~strong:ts.ts_strong ~weak:ts.ts_weak)
          tested.Netcov.cp_elements
      in
      Some
        ( { Netcov.coverage; timing = old_reports.(i).Netcov.timing; dead },
          ts )
    end
    else None
  in
  let results =
    run_suite s.cache state reg ~olds:(Some olds)
      ~old_testeds:(Some old_testeds)
      ~id_map:(Some d.Registry_diff.id_map) ~reuse_test acc testeds
  in
  let wall = Timing.now () -. t0 in
  let rep =
    Netcov.merge_reports ~wall_s:wall ~registry:reg (List.map fst results)
  in
  s.st <- state;
  s.reg <- reg;
  s.tests <- List.map snd results;
  s.testeds <- testeds;
  s.reports <- List.map fst results;
  s.rep <- rep;
  s.diff <- Some d;
  let stats =
    finish_stats ~t0 ~d:(Some d) ~dirty:!dirty ~evicted_sim ~evicted_labels acc
  in
  Log.info (fun m ->
      m
        "update%s: %d changed / %d added / %d removed elements; %d dirty \
         cones, %d reused, %d relabeled, reuse ratio %.2f"
        (if fast then " (fast path)" else "")
        stats.s_changed stats.s_added stats.s_removed stats.s_dirty_cones
        stats.s_reused stats.s_relabeled stats.s_reuse_ratio);
  stats

let report s = s.rep
let registry s = s.reg
let state s = s.st
let testeds s = s.testeds
let last_diff s = s.diff

let summary st =
  Printf.sprintf
    "elements: %d changed, %d added, %d removed\n\
     cones: %d dirty, %d reused, %d relabeled (%d full fallback(s)), reuse \
     ratio %.2f\n\
     evicted: %d sim entries, %d label entries; sims: %d hits / %d misses\n\
     wall: %.3fs\n"
    st.s_changed st.s_added st.s_removed st.s_dirty_cones st.s_reused
    st.s_relabeled st.s_full_fallbacks st.s_reuse_ratio st.s_evicted_sim
    st.s_evicted_labels st.s_sim_hits st.s_sim_misses st.s_seconds

(* ------------------------------------------------------------------ *)
(* Falsifiability: mutation coverage as ground truth for the session's
   IFG coverage (ISSUE: the tenth differential oracle). *)

type falsifiability = {
  fz_strong : Element.id list;
  fz_uncovered : Element.id list;
  fz_weak : Element.id list;
  fz_missed : Element.id list;
  fz_divergent : Element.id list;
  fz_masked : Element.id list;
  fz_rerouted : Element.id list;
  fz_weak_killed : Element.id list;
  fz_mutation : Mutation.result;
}

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let falsifiability ?operators ?mode ?pool ?max_elements ?diags s =
  let reg = s.reg in
  let cov = s.rep.Netcov.coverage in
  let facts = List.concat_map (fun t -> t.Netcov.dp_facts) s.testeds in
  (* Elements strong only by decree — control-plane test targets
     ([cp_elements], Coverage.with_strong) — are outside the
     falsifiability claim: their coverage does not assert any
     data-plane effect, so no mutant is required to kill them. *)
  let decreed = Hashtbl.create 16 in
  List.iter
    (fun (t : Netcov.tested) ->
      List.iter (fun id -> Hashtbl.replace decreed id ()) t.Netcov.cp_elements)
    s.testeds;
  let strong = ref [] and weak = ref [] and uncov = ref [] in
  Registry.iter_elements reg (fun e ->
      if not (Hashtbl.mem decreed e.Element.id) then
        match Coverage.element_status cov e.Element.id with
        | Coverage.Strong -> strong := e.Element.id :: !strong
        | Coverage.Weak -> weak := e.Element.id :: !weak
        | Coverage.Not_covered -> uncov := e.Element.id :: !uncov);
  let strong = List.rev !strong
  and weak = List.rev !weak
  and uncov = List.rev !uncov in
  (* Budgeted sampling, deterministic in element-id order: every strong
     element first (they carry the oracle's soundness direction), then
     uncovered, then weak with what remains. *)
  let strong_s, uncov_s, weak_s =
    match max_elements with
    | None -> (strong, uncov, weak)
    | Some budget ->
        let strong_s = take budget strong in
        let budget = budget - List.length strong_s in
        let uncov_s = take budget uncov in
        let budget = budget - List.length uncov_s in
        (strong_s, uncov_s, take budget weak)
  in
  let elements = strong_s @ uncov_s @ weak_s in
  let fz_mutation =
    Mutation.run reg
      ~oracle:(Mutation.facts_oracle facts)
      ~elements ?operators ?mode ?pool ?diags ()
  in
  let killed id = Element.Id_set.mem id fz_mutation.Mutation.killed in
  let survived id = Element.Id_set.mem id fz_mutation.Mutation.survived in
  let etype id = (Registry.element reg id).Element.ekey.Element.etype in
  (* Strong-but-survived splits by kind: masking-prone elements (policy
     clauses, match lists, ACLs) can be re-admitted by chain
     fall-through, and reroute-prone ones (interfaces) self-heal via
     IGP rerouting on redundant topologies — both are documented
     divergences, not violations. *)
  let missed_all = List.filter survived strong_s in
  let fz_masked, rest =
    List.partition (fun id -> Mutation.masking_prone (etype id)) missed_all
  in
  let fz_rerouted, fz_missed =
    List.partition (fun id -> Mutation.reroute_prone (etype id)) rest
  in
  let fz_divergent =
    List.filter
      (fun id -> killed id && not (Mutation.competitor_prone (etype id)))
      uncov_s
  in
  let fz_weak_killed = List.filter killed weak_s in
  {
    fz_strong = strong_s;
    fz_uncovered = uncov_s;
    fz_weak = weak_s;
    fz_missed;
    fz_divergent;
    fz_masked;
    fz_rerouted;
    fz_weak_killed;
    fz_mutation;
  }

let falsifiability_summary reg fz =
  let name id =
    let e = Registry.element reg id in
    Printf.sprintf "%s:%s (%s)" e.Element.device e.Element.ekey.Element.name
      (Element.etype_to_string e.Element.ekey.Element.etype)
  in
  let sample ids = String.concat ", " (List.map name (take 5 ids)) in
  Printf.sprintf
    "falsifiability: %d strong / %d uncovered / %d weak sampled, %d mutants \
     in %.3fs\n\
     missed (strong but survived, non-masking): %d%s\n\
     divergent (uncovered but killed, non-competitor): %d%s\n\
     masked (strong but survived, fall-through class): %d\n\
     rerouted (strong but survived, IGP self-healing class): %d\n\
     weak killed: %d\n"
    (List.length fz.fz_strong)
    (List.length fz.fz_uncovered)
    (List.length fz.fz_weak) fz.fz_mutation.Mutation.mutants_run
    fz.fz_mutation.Mutation.seconds
    (List.length fz.fz_missed)
    (if fz.fz_missed = [] then "" else " — " ^ sample fz.fz_missed)
    (List.length fz.fz_divergent)
    (if fz.fz_divergent = [] then "" else " — " ^ sample fz.fz_divergent)
    (List.length fz.fz_masked)
    (List.length fz.fz_rerouted)
    (List.length fz.fz_weak_killed)
