(** Incremental coverage engine: config-diff → cone invalidation →
    delta recompute.

    A {!session} holds everything one analyzed network state left
    behind: per-test IFGs, per-tested-fact cone label results
    ({!Netcov_core.Label.run_cone}), per-test aggregate label sets, and
    a persistent targeted-simulation memo cache. {!update} moves the
    session to a new configuration version: the registries are diffed
    ({!Registry_diff}), the sim-memo cache is invalidated precisely by
    replaying each cached evaluation of a changed device
    ({!Netcov_core.Rules.sim_cache_revalidate_hosts}), the dirty cone
    set is computed by walking each old IFG forward from the changed
    elements ({!Netcov_core.Ifg.reverse_reachable}) and evicted, and
    only what cannot be reused is recomputed.

    Soundness (see [docs/INCREMENTAL.md]): by default every test is
    re-materialized against the new state (simulations mostly hit the
    persistent cache), so the new IFG is always exact; a cone's stored
    label result is reused when the new cone is positionally identical
    to the old one (no node in it lies in the descendant closure of a
    positionally-differing node) or, failing that, when the cone's
    structural signature — node kinds, facts (config ids translated
    through the diff's id map) and in-cone wiring — is unchanged.
    Labeling is a function of that structure, so reused results equal
    recomputed ones. When the whole update carries a behavior-free
    witness — only policy-class elements changed, every replayed
    simulation was reproduced exactly, and the new stable state's
    hosts, sessions and RIBs equal the old one's — tests with unchanged
    tested facts skip re-materialization entirely and splice their
    stored pass wholesale. Either way the incremental report is
    byte-identical to a from-scratch run (asserted by the
    [incremental-scratch] differential oracle). A full per-test
    labeling pass is forced — and its cones are not cached — when a
    cone overflows the BDD variable cap. *)

open Netcov_config
open Netcov_sim
open Netcov_core

type session

(** Volume counters of one {!create} or {!update}, feeding the
    [incr.*] metrics (docs/OBSERVABILITY.md). *)
type stats = {
  s_changed : int;  (** changed elements (old ∩ new, text differs) *)
  s_added : int;
  s_removed : int;
  s_dirty_cones : int;
      (** stored cones evicted because a changed/removed element was in
          their old contribution cone *)
  s_reused : int;  (** cone results spliced from the previous run *)
  s_relabeled : int;  (** cones relabeled (dirty, new, or sig mismatch) *)
  s_full_fallbacks : int;
      (** tests forced to a full {!Label.run} by the per-cone cap *)
  s_evicted_sim : int;
      (** sim-cache entries of changed devices whose replayed result
          (or canonical key space) moved *)
  s_evicted_labels : int;  (** = [s_dirty_cones] plus stale-test drops *)
  s_sim_hits : int;  (** sim-cache hits during this pass *)
  s_sim_misses : int;
  s_reuse_ratio : float;
      (** reused / (reused + relabeled), 0 when nothing ran *)
  s_seconds : float;
}

(** [create state testeds] runs the cold, from-scratch analysis and
    returns the primed session. [sim_canon] is
    {!Netcov.analyze}'s [sim_canon] (default true). *)
val create :
  ?sim_canon:bool -> Stable_state.t -> Netcov.tested list -> session * stats

(** [update s state testeds] re-analyzes against the new stable state,
    reusing everything the config diff did not invalidate. Tests are
    matched to the previous run by position; extra tests run cold,
    missing tests are dropped. The resulting {!report} is byte-identical
    (coverage-wise) to [Netcov.analyze_suite state testeds] merged. *)
val update : session -> Stable_state.t -> Netcov.tested list -> stats

(** Merged suite report of the session's current state (the same shape
    {!Netcov.merge_reports} produces). *)
val report : session -> Netcov.report

val registry : session -> Registry.t

(** The stable state the session currently holds (the one passed to the
    most recent {!create} or {!update}). Session-table owners — the
    [netcov serve] daemon keeps one warm session per registered network
    — compile newly registered test suites against this state rather
    than recomputing it. *)
val state : session -> Stable_state.t

(** The tested list of the most recent {!create} or {!update}, in
    position order. Because {!update} matches tests to the previous run
    positionally, a caller growing a suite should pass
    [testeds s @ extra] to reuse every stored pass of the prefix. *)
val testeds : session -> Netcov.tested list

(** The diff computed by the most recent {!update} ([None] after
    {!create}). *)
val last_diff : session -> Registry_diff.t option

val summary : stats -> string

(** {1 Falsifiability}

    Mutation coverage as ground truth for the session's IFG coverage
    (paper §3.1): mutating a {e covered} element must change some test
    outcome; mutating an {e uncovered} element must change none, modulo
    the competitor class ({!Netcov_core.Mutation.competitor_prone}).
    This is what the [mutation-falsifiability] differential oracle
    checks on random scenarios, and what [netcov_cli fuzz] and the
    nightly soak drive. *)

type falsifiability = {
  fz_strong : Element.id list;
      (** sampled strongly-covered elements; elements strong only by
          decree (control-plane test targets, [cp_elements]) are
          excluded — their coverage asserts no data-plane effect *)
  fz_uncovered : Element.id list;  (** sampled uncovered elements *)
  fz_weak : Element.id list;  (** sampled weakly-covered elements *)
  fz_missed : Element.id list;
      (** violation: strong and not masking-prone, yet every mutant
          survived *)
  fz_divergent : Element.id list;
      (** violation: uncovered and not competitor-prone, yet killed *)
  fz_masked : Element.id list;
      (** informational: strong but survived, of a
          {!Netcov_core.Mutation.masking_prone} kind — chain
          fall-through re-admitted the route (documented divergence) *)
  fz_rerouted : Element.id list;
      (** informational: strong but survived, of a
          {!Netcov_core.Mutation.reroute_prone} kind — the IGP rerouted
          around the deleted interface and the facts self-healed
          (documented divergence on redundant topologies) *)
  fz_weak_killed : Element.id list;
      (** informational: weak elements killed (ECMP alternatives may go
          either way) *)
  fz_mutation : Mutation.result;
}

(** [falsifiability s] runs mutation coverage over the session's
    registry against the session's tested data-plane facts (warm mutant
    execution by default) and cross-checks the verdicts against the
    session's coverage map. [max_elements] caps the sample: all strong
    elements first, then uncovered, then weak, deterministically in
    element-id order. The check passes iff [fz_missed] and
    [fz_divergent] are both empty. *)
val falsifiability :
  ?operators:Mutation.operator list ->
  ?mode:Mutation.mode ->
  ?pool:Netcov_parallel.Pool.t ->
  ?max_elements:int ->
  ?diags:(Netcov_diag.Diag.t -> unit) ->
  session ->
  falsifiability

(** Human-readable multi-line summary with element provenance for the
    violating samples. *)
val falsifiability_summary : Registry.t -> falsifiability -> string
