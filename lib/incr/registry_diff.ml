open Netcov_config

type entry = {
  e_device : string;
  e_key : Element.key;
  e_old_id : Element.id;
  e_new_id : Element.id;
  e_lines : int list;
}

type t = {
  changed : entry list;
  added : entry list;
  removed : entry list;
  id_map : int array;
  devices_changed : string list;
}

(* The text an element owns, in line order. Owned lines are 1-based and
   not necessarily contiguous. *)
let owned_text reg (e : Element.t) =
  let text = Registry.text reg e.Element.device in
  List.map
    (fun l -> if l >= 1 && l <= Array.length text then text.(l - 1) else "")
    e.Element.lines

let diff ~old next =
  let id_map = Array.make (Registry.n_elements old) (-1) in
  let changed = ref [] and added = ref [] and removed = ref [] in
  Registry.iter_elements old (fun oe ->
      match Registry.find next ~device:oe.Element.device oe.Element.ekey with
      | None ->
          removed :=
            {
              e_device = oe.Element.device;
              e_key = oe.Element.ekey;
              e_old_id = oe.Element.id;
              e_new_id = -1;
              e_lines = oe.Element.lines;
            }
            :: !removed
      | Some nid ->
          id_map.(oe.Element.id) <- nid;
          let ne = Registry.element next nid in
          if owned_text old oe <> owned_text next ne then
            changed :=
              {
                e_device = oe.Element.device;
                e_key = oe.Element.ekey;
                e_old_id = oe.Element.id;
                e_new_id = nid;
                e_lines = ne.Element.lines;
              }
              :: !changed);
  Registry.iter_elements next (fun ne ->
      match Registry.find old ~device:ne.Element.device ne.Element.ekey with
      | Some _ -> ()
      | None ->
          added :=
            {
              e_device = ne.Element.device;
              e_key = ne.Element.ekey;
              e_old_id = -1;
              e_new_id = ne.Element.id;
              e_lines = ne.Element.lines;
            }
            :: !added);
  (* Device-level change set: drives sim-cache eviction, so it must
     cover every difference that can alter a policy-chain evaluation —
     rendered text for internal devices, whole-structure equality for
     external stubs (their announcements are config too, they just own
     no coverage elements). *)
  let by_host devs =
    let tbl = Hashtbl.create 64 in
    List.iter (fun d -> Hashtbl.replace tbl d.Device.hostname d) devs;
    tbl
  in
  let old_devs = by_host (Registry.devices old) in
  let new_devs = by_host (Registry.devices next) in
  let devices_changed = ref [] in
  let mark h = devices_changed := h :: !devices_changed in
  Hashtbl.iter
    (fun h od ->
      match Hashtbl.find_opt new_devs h with
      | None -> mark h
      | Some nd ->
          let differs =
            if Registry.is_external old h || Registry.is_external next h then
              Registry.is_external old h <> Registry.is_external next h
              || od <> nd
            else Registry.text old h <> Registry.text next h
          in
          if differs then mark h)
    old_devs;
  Hashtbl.iter
    (fun h _ -> if not (Hashtbl.mem old_devs h) then mark h)
    new_devs;
  {
    changed = List.rev !changed;
    added = List.rev !added;
    removed = List.rev !removed;
    id_map;
    devices_changed = List.sort_uniq String.compare !devices_changed;
  }

let is_empty d =
  d.changed = [] && d.added = [] && d.removed = [] && d.devices_changed = []

let summary d =
  let buf = Buffer.create 256 in
  let section title entries =
    let n = List.length entries in
    if n > 0 then begin
      Buffer.add_string buf (Printf.sprintf "%s: %d element(s)\n" title n);
      List.filteri (fun i _ -> i < 5) entries
      |> List.iter (fun e ->
             Buffer.add_string buf
               (Printf.sprintf "  %s:%s (%s) lines %s\n" e.e_device
                  e.e_key.Element.name
                  (Element.etype_to_string e.e_key.Element.etype)
                  (String.concat "," (List.map string_of_int e.e_lines))))
    end
  in
  section "changed" d.changed;
  section "added" d.added;
  section "removed" d.removed;
  if d.devices_changed <> [] then
    Buffer.add_string buf
      (Printf.sprintf "devices changed: %s\n"
         (String.concat ", " d.devices_changed));
  if is_empty d then Buffer.add_string buf "configuration unchanged\n";
  Buffer.contents buf
