(** Structural diff of two configuration registries at the typed-element
    level ({!Netcov_config.Element}): which elements changed, appeared or
    disappeared between two versions of the network's configuration, with
    device and line provenance, plus the old-id → new-id translation the
    incremental engine ({!Incr}) uses to carry coverage results across
    the update. *)

open Netcov_config

(** One differing element. For [changed] and [added] entries the line
    numbers refer to the new registry's rendered text; for [removed]
    entries to the old registry's. *)
type entry = {
  e_device : string;
  e_key : Element.key;
  e_old_id : Element.id;  (** [-1] for added elements *)
  e_new_id : Element.id;  (** [-1] for removed elements *)
  e_lines : int list;  (** 1-based owned lines, provenance for reports *)
}

type t = {
  changed : entry list;
      (** same (device, key) on both sides, owned text differs *)
  added : entry list;
  removed : entry list;
  id_map : int array;
      (** old element id → new element id for elements present on both
          sides (changed or not), [-1] for removed; length
          [Registry.n_elements old] *)
  devices_changed : string list;
      (** devices whose configuration differs at all — rendered text
          for internal devices, structural equality for external stubs —
          including devices only present on one side; sorted *)
}

(** [diff ~old next] matches elements by (device, {!Element.key}).
    Elements match when both registries bind the key on that device;
    matched elements are [changed] when the text of their owned lines
    differs. *)
val diff : old:Registry.t -> Registry.t -> t

(** No element changed, appeared or disappeared, and no device's
    configuration differs. *)
val is_empty : t -> bool

(** Human-readable provenance summary ("device:name (type) lines ..."),
    a few exemplars per class. *)
val summary : t -> string
