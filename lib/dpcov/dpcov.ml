open Netcov_sim
open Netcov_core

type t = { tested_entries : int; total_entries : int }

let pct t =
  if t.total_entries = 0 then 0.
  else 100. *. float_of_int t.tested_entries /. float_of_int t.total_entries

let of_tested state (tested : Netcov.tested) =
  let seen = Fact.Tbl.create 1024 in
  let count_fact f =
    match f with
    | Fact.F_main_rib { host; _ } when not (Stable_state.is_external state host)
      ->
        Fact.Tbl.replace seen f ()
    | Fact.F_path { src; dst; idx } -> (
        (* a tested path exercises the forwarding entries along it *)
        match List.nth_opt (Stable_state.trace state ~src ~dst) idx with
        | None -> ()
        | Some path ->
            List.iter
              (fun (h : Forward.hop) ->
                if not (Stable_state.is_external state h.hop_host) then
                  List.iter
                    (fun entry ->
                      Fact.Tbl.replace seen
                        (Fact.F_main_rib { host = h.hop_host; entry })
                        ())
                    h.hop_entries)
              path.hops)
    | _ -> ()
  in
  List.iter count_fact tested.dp_facts;
  let total =
    List.fold_left
      (fun acc host -> acc + Rib.table_count (Stable_state.main_rib state host))
      0
      (Stable_state.internal_hosts state)
  in
  { tested_entries = Fact.Tbl.length seen; total_entries = total }

let all_data_plane_tested state =
  let dp_facts =
    List.concat_map
      (fun host ->
        List.map
          (fun (_, entry) -> Fact.F_main_rib { host; entry })
          (Rib.table_entries (Stable_state.main_rib state host)))
      (Stable_state.internal_hosts state)
  in
  { Netcov.dp_facts; cp_elements = [] }
