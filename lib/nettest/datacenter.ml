open Netcov_types
open Netcov_config
open Netcov_policy
open Netcov_sim
open Netcov_core
open Netcov_workloads

let internal_routers (ft : Fattree.t) = ft.leaves @ ft.aggs @ ft.spines

(* Every router must hold the default route. *)
let default_route_check (ft : Fattree.t) : Nettest.t =
  let run state =
    let failures = ref [] in
    let checks = ref 0 in
    let dp_facts = ref [] in
    List.iter
      (fun host ->
        incr checks;
        match Nettest.main_facts state host Prefix.default with
        | [] -> failures := Printf.sprintf "%s lacks a default route" host :: !failures
        | facts -> dp_facts := facts @ !dp_facts)
      (internal_routers ft);
    {
      Nettest.outcome = { checks = !checks; failures = List.rev !failures };
      tested = { Netcov.dp_facts = List.rev !dp_facts; cp_elements = [] };
    }
  in
  { Nettest.name = "DefaultRouteCheck"; kind = Nettest.Data_plane; run }

(* Each leaf subnet must be reachable from every other leaf. The probe
   exercises the forwarding entries along every ECMP path. *)
let tor_pingmesh (ft : Fattree.t) : Nettest.t =
  let run state =
    let failures = ref [] in
    let checks = ref 0 in
    let seen = Fact.Tbl.create 4096 in
    let dp_facts = ref [] in
    let push f =
      if not (Fact.Tbl.mem seen f) then begin
        Fact.Tbl.add seen f ();
        dp_facts := f :: !dp_facts
      end
    in
    List.iter
      (fun src ->
        List.iter
          (fun (dst_leaf, subnet) ->
            if src <> dst_leaf then begin
              incr checks;
              let dst = Prefix.first_host subnet in
              let paths = Stable_state.trace state ~src ~dst in
              let reached =
                List.exists (fun (p : Forward.path) -> p.reached) paths
              in
              List.iteri
                (fun idx (p : Forward.path) ->
                  if p.reached then begin
                    push (Fact.F_path { src; dst; idx });
                    List.iter
                      (fun (h : Forward.hop) ->
                        List.iter
                          (fun entry ->
                            push (Fact.F_main_rib { host = h.hop_host; entry }))
                          h.hop_entries)
                      p.hops
                  end)
                paths;
              if not reached then
                failures :=
                  Printf.sprintf "%s cannot reach %s (%s)" src
                    (Prefix.to_string subnet) dst_leaf
                  :: !failures
            end)
          ft.leaf_subnets)
      ft.leaves;
    {
      Nettest.outcome = { checks = !checks; failures = List.rev !failures };
      tested = { Netcov.dp_facts = List.rev !dp_facts; cp_elements = [] };
    }
  in
  { Nettest.name = "ToRPingmesh"; kind = Nettest.Data_plane; run }

(* Each spine must hold the aggregate and its WAN export policy must
   advertise it. *)
let export_aggregate (ft : Fattree.t) : Nettest.t =
  let run state =
    let failures = ref [] in
    let checks = ref 0 in
    let dp_facts = ref [] in
    let cp_elements = ref [] in
    List.iter
      (fun spine ->
        incr checks;
        let d = Stable_state.find_device state spine in
        match Stable_state.bgp_lookup_best state spine ft.aggregate_prefix with
        | [] ->
            failures :=
              Printf.sprintf "%s has no active aggregate %s" spine
                (Prefix.to_string ft.aggregate_prefix)
              :: !failures
        | entries ->
            List.iter
              (fun (e : Rib.bgp_entry) ->
                dp_facts :=
                  Fact.F_bgp_rib
                    { host = spine; route = e.be_route; source = e.be_source }
                  :: !dp_facts;
                (* simulate the WAN export: the test's assertion *)
                List.iter
                  (fun ((nb : Device.neighbor), _) ->
                    let { Eval.verdict; exercised; _ } =
                      Eval.run_chain d
                        ~chain:(Device.neighbor_export d nb)
                        ~default:Eval.Accepted e.be_route
                    in
                    cp_elements :=
                      Testutil.ids_of_keys state ~host:spine exercised
                      @ !cp_elements;
                    if verdict = Eval.Rejected then
                      failures :=
                        Printf.sprintf "%s does not export the aggregate to %s"
                          spine
                          (Ipv4.to_string nb.nb_ip)
                        :: !failures)
                  (Testutil.external_neighbors state spine))
              entries)
      ft.spines;
    {
      Nettest.outcome = { checks = !checks; failures = List.rev !failures };
      tested =
        {
          Netcov.dp_facts = List.rev !dp_facts;
          cp_elements = List.sort_uniq Int.compare !cp_elements;
        };
    }
  in
  { Nettest.name = "ExportAggregate"; kind = Nettest.Data_plane; run }

let suite ft = [ default_route_check ft; tor_pingmesh ft; export_aggregate ft ]
