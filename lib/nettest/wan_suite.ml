open Netcov_types
open Netcov_config
open Netcov_policy
open Netcov_sim
open Netcov_core
open Netcov_workloads

(* Every client router must hold a route for every LAN of its own AS:
   those routes only exist via the reflectors, so this is the test
   that fails when route reflection is misconfigured. *)
let rr_client_routes (w : Wan.t) : Nettest.t =
  let as_of name =
    List.find_map
      (fun (a, nm) -> if nm = name then Some a else None)
      w.Wan.routers
  in
  let run state =
    let failures = ref [] in
    let checks = ref 0 in
    let dp_facts = ref [] in
    List.iter
      (fun (a, name) ->
        if List.mem name w.Wan.clients then
          List.iter
            (fun (owner, prefix) ->
              if owner <> name && as_of owner = Some a then begin
                incr checks;
                match Nettest.main_facts state name prefix with
                | [] ->
                    failures :=
                      Printf.sprintf "%s lacks reflected route %s (from %s)"
                        name (Prefix.to_string prefix) owner
                      :: !failures
                | facts -> dp_facts := facts @ !dp_facts
              end)
            w.Wan.lans)
      w.Wan.routers;
    {
      Nettest.outcome = { checks = !checks; failures = List.rev !failures };
      tested = { Netcov.dp_facts = List.rev !dp_facts; cp_elements = [] };
    }
  in
  { Nettest.name = "RRClientRoutes"; kind = Nettest.Data_plane; run }

(* Cross-AS reachability: from a sample router of every AS, trace to
   one LAN of every other AS. The interesting property is transit —
   the far side of the AS ring is only reachable through intermediate
   ASes' border policies. *)
let wan_pingmesh (w : Wan.t) : Nettest.t =
  let run state =
    let failures = ref [] in
    let checks = ref 0 in
    let seen = Fact.Tbl.create 4096 in
    let dp_facts = ref [] in
    let push f =
      if not (Fact.Tbl.mem seen f) then begin
        Fact.Tbl.add seen f ();
        dp_facts := f :: !dp_facts
      end
    in
    let sample_src a =
      (* the first client of each AS: reaches the border via IGP and
         the reflected route *)
      Printf.sprintf "as%d-r%d" a w.Wan.n_rr
    in
    let sample_dst b =
      (* the last router's LAN: owned by the exit border router *)
      List.assoc
        (Printf.sprintf "as%d-r%d" b (w.Wan.routers_per_as - 1))
        w.Wan.lans
    in
    for a = 0 to w.Wan.n_ases - 1 do
      for b = 0 to w.Wan.n_ases - 1 do
        if a <> b then begin
          incr checks;
          let src = sample_src a in
          let dst = Prefix.first_host (sample_dst b) in
          let paths = Stable_state.trace state ~src ~dst in
          let reached =
            List.exists (fun (p : Forward.path) -> p.reached) paths
          in
          List.iteri
            (fun idx (p : Forward.path) ->
              if p.reached then begin
                push (Fact.F_path { src; dst; idx });
                List.iter
                  (fun (h : Forward.hop) ->
                    List.iter
                      (fun entry ->
                        push (Fact.F_main_rib { host = h.hop_host; entry }))
                      h.hop_entries)
                  p.hops
              end)
            paths;
          if not reached then
            failures :=
              Printf.sprintf "AS%d (%s) cannot reach AS%d (%s)" a src b
                (Ipv4.to_string dst)
              :: !failures
        end
      done
    done;
    {
      Nettest.outcome = { checks = !checks; failures = List.rev !failures };
      tested = { Netcov.dp_facts = List.rev !dp_facts; cp_elements = [] };
    }
  in
  { Nettest.name = "WanPingmesh"; kind = Nettest.Data_plane; run }

(* Every border router must export its own AS's LANs over every
   inter-AS session — evaluated directly on the export chain, which
   marks the WAN-OUT / AS-LANS elements as control-plane tested. *)
let border_export (w : Wan.t) : Nettest.t =
  let run state =
    let failures = ref [] in
    let checks = ref 0 in
    let dp_facts = ref [] in
    let cp_elements = ref [] in
    let check_end host =
      let d = Stable_state.find_device state host in
      let own_lan = List.assoc host w.Wan.lans in
      match Stable_state.bgp_lookup_best state host own_lan with
      | [] ->
          incr checks;
          failures :=
            Printf.sprintf "%s has no active route for its own LAN %s" host
              (Prefix.to_string own_lan)
            :: !failures
      | entries ->
          List.iter
            (fun (e : Rib.bgp_entry) ->
              dp_facts :=
                Fact.F_bgp_rib
                  { host; route = e.be_route; source = e.be_source }
                :: !dp_facts;
              match d.Device.bgp with
              | None -> ()
              | Some b ->
                  List.iter
                    (fun (nb : Device.neighbor) ->
                      if nb.Device.nb_group = Some "WAN" then begin
                        incr checks;
                        let { Eval.verdict; exercised; _ } =
                          Eval.run_chain d
                            ~chain:(Device.neighbor_export d nb)
                            ~default:Eval.Accepted e.be_route
                        in
                        cp_elements :=
                          Testutil.ids_of_keys state ~host exercised
                          @ !cp_elements;
                        if verdict = Eval.Rejected then
                          failures :=
                            Printf.sprintf "%s does not export %s to %s" host
                              (Prefix.to_string own_lan)
                              (Ipv4.to_string nb.Device.nb_ip)
                            :: !failures
                      end)
                    b.Device.neighbors)
            entries
    in
    List.iter
      (fun (s : Wan.session) ->
        check_end s.Wan.ss_local;
        check_end s.Wan.ss_remote)
      w.Wan.borders;
    {
      Nettest.outcome = { checks = !checks; failures = List.rev !failures };
      tested =
        {
          Netcov.dp_facts = List.rev !dp_facts;
          cp_elements = List.sort_uniq Int.compare !cp_elements;
        };
    }
  in
  { Nettest.name = "BorderExportPolicy"; kind = Nettest.Data_plane; run }

let suite w = [ rr_client_routes w; wan_pingmesh w; border_export w ]
