(** Test suite for the multi-AS WAN workload ({!Netcov_workloads.Wan}):
    route-reflection health, cross-AS transit reachability, and border
    export policy evaluation. The rr-wan mega-workload rows of
    BENCH_parallel.json run this suite. *)

open Netcov_workloads

(** Every client holds the reflected routes for its own AS's LANs. *)
val rr_client_routes : Wan.t -> Nettest.t

(** From a sample router in every AS, trace to a LAN of every other AS
    (transit through intermediate ASes' border policies). *)
val wan_pingmesh : Wan.t -> Nettest.t

(** Every border router exports its own LAN over each inter-AS session
    (direct export-chain evaluation; marks policy elements
    control-plane tested). *)
val border_export : Wan.t -> Nettest.t

val suite : Wan.t -> Nettest.t list
