open Netcov_types
open Netcov_config
open Netcov_policy
open Netcov_sim
open Netcov_core
open Netcov_workloads

(* Iteration 1: cover the remaining SANITY-IN clauses. *)
let sanity_in (net : Internet2.t) : Nettest.t =
  let run state =
    let failures = ref [] in
    let checks = ref 0 in
    let cp_elements = ref [] in
    let forbidden nb_asn =
      (* one representative route per remaining SANITY-IN class *)
      List.map
        (fun asn ->
          Testutil.test_route ~as_path:[ nb_asn; asn ]
            (Prefix.of_string "100.90.1.0/24"))
        net.private_asns
      @ List.map
          (fun asn ->
            Testutil.test_route ~as_path:[ nb_asn; asn; 30001 ]
              (Prefix.of_string "100.91.1.0/24"))
          net.transit_asns
      @ [ Testutil.test_route ~as_path:[ nb_asn ] Prefix.default ]
      @ List.map
          (fun p ->
            Testutil.test_route ~as_path:[ nb_asn ]
              (Prefix.nth_subnet p ~len:24 ~n:5))
          net.internal_prefixes
    in
    List.iter
      (fun host ->
        let d = Stable_state.find_device state host in
        List.iter
          (fun ((nb : Device.neighbor), _) ->
            List.iter
              (fun route ->
                incr checks;
                let { Eval.verdict; exercised; _ } =
                  Eval.run_chain d
                    ~chain:(Device.neighbor_import d nb)
                    ~default:Eval.Accepted route
                in
                cp_elements :=
                  Testutil.ids_of_keys state ~host exercised @ !cp_elements;
                if verdict = Eval.Accepted then
                  failures :=
                    Printf.sprintf "%s accepts forbidden route %s from %s" host
                      (Prefix.to_string route.Route.prefix)
                      (Ipv4.to_string nb.nb_ip)
                    :: !failures)
              (forbidden nb.nb_remote_as))
          (Testutil.external_neighbors state host))
      net.routers;
    {
      Nettest.outcome = { checks = !checks; failures = List.rev !failures };
      tested =
        {
          Netcov.dp_facts = [];
          cp_elements = List.sort_uniq Int.compare !cp_elements;
        };
    }
  in
  { Nettest.name = "SanityIn"; kind = Nettest.Control_plane; run }

(* Iteration 2: permitted announcements must be accepted; directly tests
   each peer's binding and its permit list. *)
let peer_specific_route (net : Internet2.t) : Nettest.t =
  let run state =
    let failures = ref [] in
    let checks = ref 0 in
    let cp_elements = ref [] in
    let reg = Stable_state.registry state in
    List.iter
      (fun (pi : Internet2.peer_info) ->
        let d = Stable_state.find_device state pi.router in
        match
          List.find_opt
            (fun (nb : Device.neighbor) -> Ipv4.equal nb.nb_ip pi.peer_ip)
            (match d.Device.bgp with Some b -> b.neighbors | None -> [])
        with
        | None -> ()
        | Some nb ->
            (* the test exercises the peer's configuration directly *)
            (match
               Registry.find reg ~device:pi.router
                 (Element.key Bgp_peer (Ipv4.to_string pi.peer_ip))
             with
            | Some id -> cp_elements := id :: !cp_elements
            | None -> ());
            List.iter
              (fun p ->
                incr checks;
                let route = Testutil.test_route ~as_path:[ pi.asn ] p in
                let { Eval.verdict; exercised; _ } =
                  Eval.run_chain d
                    ~chain:(Device.neighbor_import d nb)
                    ~default:Eval.Accepted route
                in
                cp_elements :=
                  Testutil.ids_of_keys state ~host:pi.router exercised
                  @ !cp_elements;
                if verdict = Eval.Rejected then
                  failures :=
                    Printf.sprintf "%s rejects permitted %s from %s" pi.router
                      (Prefix.to_string p) pi.stub_host
                    :: !failures)
              pi.allowed)
      net.peers;
    {
      Nettest.outcome = { checks = !checks; failures = List.rev !failures };
      tested =
        {
          Netcov.dp_facts = [];
          cp_elements = List.sort_uniq Int.compare !cp_elements;
        };
    }
  in
  { Nettest.name = "PeerSpecificRoute"; kind = Nettest.Control_plane; run }

(* Iteration 3: PingMesh over interface addresses. *)
let interface_reachability (net : Internet2.t) : Nettest.t =
  let run state =
    let failures = ref [] in
    let checks = ref 0 in
    let seen = Fact.Tbl.create 4096 in
    let dp_facts = ref [] in
    let push f =
      if not (Fact.Tbl.mem seen f) then begin
        Fact.Tbl.add seen f ();
        dp_facts := f :: !dp_facts
      end
    in
    let targets =
      List.concat_map
        (fun host ->
          let d = Stable_state.find_device state host in
          List.filter_map
            (fun (i : Device.interface) ->
              Option.map (fun (ip, _) -> (host, i, ip)) i.address)
            d.Device.interfaces)
        net.routers
    in
    List.iter
      (fun src ->
        List.iter
          (fun (owner, (i : Device.interface), ip) ->
            if src = owner then begin
              (* local delivery: the connected entry is what's tested *)
              incr checks;
              match
                Rib.table_longest_match ip (Stable_state.main_rib state src)
              with
              | Some (_, entries) ->
                  List.iter
                    (fun entry -> push (Fact.F_main_rib { host = src; entry }))
                    entries
              | None ->
                  failures :=
                    Printf.sprintf "%s has no route to local %s" src
                      (Ipv4.to_string ip)
                    :: !failures
            end
            else if
              i.igp_enabled
              || List.exists (fun p -> Prefix.contains p ip) net.internal_prefixes
            then begin
              incr checks;
              let paths = Stable_state.trace state ~src ~dst:ip in
              let reached =
                List.exists (fun (p : Forward.path) -> p.reached) paths
              in
              List.iteri
                (fun idx (p : Forward.path) ->
                  if p.reached then begin
                    push (Fact.F_path { src; dst = ip; idx });
                    List.iter
                      (fun (h : Forward.hop) ->
                        List.iter
                          (fun entry ->
                            push (Fact.F_main_rib { host = h.hop_host; entry }))
                          h.hop_entries)
                      p.hops
                  end)
                paths;
              if not reached then
                failures :=
                  Printf.sprintf "%s cannot reach %s (%s on %s)" src
                    (Ipv4.to_string ip) i.if_name owner
                  :: !failures
            end)
          targets)
      net.routers;
    {
      Nettest.outcome = { checks = !checks; failures = List.rev !failures };
      tested = { Netcov.dp_facts = List.rev !dp_facts; cp_elements = [] };
    }
  in
  { Nettest.name = "InterfaceReachability"; kind = Nettest.Data_plane; run }

let improved_suite net =
  Bagpipe.suite net
  @ [ sanity_in net; peer_specific_route net; interface_reachability net ]
