open Netcov_types
open Netcov_config
open Netcov_policy
open Netcov_sim
open Netcov_core

type t = {
  st : Stable_state.t;
  seen : unit Fact.Tbl.t;
  mutable dp_facts : Fact.t list;
  mutable cp_elements : Element.id list;
  mutable n_checks : int;
  mutable fails : string list;
}

let create st =
  {
    st;
    seen = Fact.Tbl.create 256;
    dp_facts = [];
    cp_elements = [];
    n_checks = 0;
    fails = [];
  }

let state p = p.st

let check p ok msg =
  p.n_checks <- p.n_checks + 1;
  if not ok then p.fails <- msg :: p.fails

let push p f =
  if not (Fact.Tbl.mem p.seen f) then begin
    Fact.Tbl.add p.seen f ();
    p.dp_facts <- f :: p.dp_facts
  end

let route_present p ~host prefix =
  let entries = Stable_state.main_lookup p.st host prefix in
  List.iter (fun entry -> push p (Fact.F_main_rib { host; entry })) entries;
  entries <> []

let record_bgp p host entries =
  List.iter
    (fun (e : Rib.bgp_entry) ->
      push p (Fact.F_bgp_rib { host; route = e.be_route; source = e.be_source }))
    entries;
  entries

let best_routes p ~host prefix =
  record_bgp p host (Stable_state.bgp_lookup_best p.st host prefix)

let all_routes p ~host prefix =
  record_bgp p host (Stable_state.bgp_lookup p.st host prefix)

let reachable p ~src ~dst =
  let paths = Stable_state.trace p.st ~src ~dst in
  List.iteri
    (fun idx (q : Forward.path) ->
      if q.reached then begin
        push p (Fact.F_path { src; dst; idx });
        List.iter
          (fun (h : Forward.hop) ->
            List.iter
              (fun entry -> push p (Fact.F_main_rib { host = h.hop_host; entry }))
              h.hop_entries)
          q.hops
      end)
    paths;
  List.exists (fun (q : Forward.path) -> q.reached) paths

let record_cp p host keys =
  let reg = Stable_state.registry p.st in
  List.iter
    (fun k ->
      match Registry.find reg ~device:host k with
      | Some id ->
          if not (List.mem id p.cp_elements) then
            p.cp_elements <- id :: p.cp_elements
      | None -> ())
    keys

let eval_chain p ~host ~chain route =
  let d = Stable_state.find_device p.st host in
  let { Eval.verdict; exercised; _ } =
    Eval.run_chain d ~chain ~default:Eval.Accepted route
  in
  record_cp p host exercised;
  match verdict with Eval.Accepted -> `Accepted | Eval.Rejected -> `Rejected

let find_neighbor p ~host ~neighbor =
  let d = Stable_state.find_device p.st host in
  match d.Device.bgp with
  | None -> None
  | Some b ->
      Option.map
        (fun nb -> (d, nb))
        (List.find_opt
           (fun (nb : Device.neighbor) -> Ipv4.equal nb.nb_ip neighbor)
           b.neighbors)

let import_verdict p ~host ~neighbor route =
  match find_neighbor p ~host ~neighbor with
  | None -> `Rejected
  | Some (d, nb) ->
      eval_chain p ~host ~chain:(Device.neighbor_import d nb) route

let export_verdict p ~host ~neighbor route =
  match find_neighbor p ~host ~neighbor with
  | None -> `Rejected
  | Some (d, nb) ->
      eval_chain p ~host ~chain:(Device.neighbor_export d nb) route

let tested p =
  {
    Netcov.dp_facts = List.rev p.dp_facts;
    cp_elements = List.sort_uniq Int.compare p.cp_elements;
  }

let checks p = p.n_checks
let failures p = List.rev p.fails

let to_test ~name ~kind run =
  {
    Nettest.name;
    kind;
    run =
      (fun st ->
        let p = create st in
        run p;
        {
          Nettest.outcome = { checks = p.n_checks; failures = failures p };
          tested = tested p;
        });
  }
