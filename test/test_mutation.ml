(* Mutation-based coverage (paper §3.1's alternative definition) and its
   relationship to IFG coverage on the chain fixture. *)
open Netcov_types
open Netcov_config
open Netcov_sim
open Netcov_core

let check_bool = Alcotest.(check bool)
let p = Prefix.of_string

let devices = Testnet.chain ()
let reg = lazy (Registry.build devices)
let state = lazy (Stable_state.compute (Lazy.force reg))

let tested_facts =
  lazy
    (List.map
       (fun entry -> Fact.F_main_rib { host = "c"; entry })
       (Stable_state.main_lookup (Lazy.force state) "c" (p "10.10.0.0/24")))

let mutation_result =
  lazy
    (let reg = Lazy.force reg in
     Mutation.run reg
       ~oracle:(Mutation.facts_oracle (Lazy.force tested_facts))
       ())

(* ---------------- delete_element ---------------- *)

let test_delete_interface () =
  let a = List.hd devices in
  match Mutation.delete_element a (Element.key Element.Interface "lan0") with
  | None -> Alcotest.fail "expected deletion"
  | Some a' ->
      check_bool "interface gone" true (Device.find_interface a' "lan0" = None);
      check_bool "others kept" true (Device.find_interface a' "eth0" <> None)

let test_delete_missing () =
  let a = List.hd devices in
  check_bool "missing iface" true
    (Mutation.delete_element a (Element.key Element.Interface "nope") = None);
  check_bool "missing peer" true
    (Mutation.delete_element a (Element.key Element.Bgp_peer "9.9.9.9") = None)

let test_delete_network_statement () =
  let a = List.hd devices in
  match
    Mutation.delete_element a (Element.key Element.Bgp_network "10.10.0.0/24")
  with
  | None -> Alcotest.fail "expected deletion"
  | Some a' ->
      check_bool "network gone" true ((Option.get a'.Device.bgp).networks = [])

let test_delete_policy_clause () =
  let d =
    Device.make
      ~policies:
        [
          {
            Policy_ast.pol_name = "P";
            terms =
              [
                { term_name = "t1"; matches = []; actions = [ Policy_ast.Accept ] };
                { term_name = "t2"; matches = []; actions = [ Policy_ast.Reject ] };
              ];
          };
        ]
      "d"
  in
  match
    Mutation.delete_element d (Element.key Element.Route_policy_clause "P/t1")
  with
  | None -> Alcotest.fail "expected deletion"
  | Some d' ->
      let pol = Option.get (Device.find_policy d' "P") in
      check_bool "one term left" true
        (List.map (fun (t : Policy_ast.term) -> t.term_name) pol.terms = [ "t2" ])

(* ---------------- fact_holds ---------------- *)

let test_fact_holds () =
  let state = Lazy.force state in
  List.iter
    (fun f -> check_bool "baseline holds" true (Mutation.fact_holds state f))
    (Lazy.force tested_facts);
  let bogus =
    Fact.F_main_rib
      {
        host = "c";
        entry =
          {
            Rib.me_prefix = p "203.0.113.0/24";
            me_nexthop = Rib.Nh_discard;
            me_protocol = Route.Bgp;
            me_metric = 0;
          };
      }
  in
  check_bool "bogus does not hold" false (Mutation.fact_holds state bogus)

(* ---------------- end-to-end mutation analysis ---------------- *)

let killed_names () =
  let reg = Lazy.force reg in
  let r = Lazy.force mutation_result in
  Element.Id_set.fold
    (fun id acc ->
      let e = Registry.element reg id in
      (e.Element.device ^ ":" ^ Element.name_of e) :: acc)
    r.Mutation.killed []
  |> List.sort String.compare

let test_mutation_kills_derivation_chain () =
  let killed = killed_names () in
  List.iter
    (fun name -> check_bool (name ^ " killed") true (List.mem name killed))
    [
      "a:10.10.0.0/24" (* network statement *);
      "a:lan0";
      "a:192.168.0.2" (* a's peering *);
      "b:192.168.0.1";
      "b:192.168.0.6";
      "c:192.168.0.5";
    ]

let test_mutation_agrees_with_ifg_on_chain () =
  (* On a purely conjunctive derivation, IFG coverage and mutation
     coverage agree on every mutable element. *)
  let reg = Lazy.force reg in
  let state = Lazy.force state in
  let report =
    Netcov.analyze state
      { Netcov.dp_facts = Lazy.force tested_facts; cp_elements = [] }
  in
  let r = Lazy.force mutation_result in
  Registry.iter_elements reg (fun e ->
      let ifg_covered =
        Coverage.element_status report.Netcov.coverage e.Element.id
        <> Coverage.Not_covered
      in
      let mut_covered = Element.Id_set.mem e.Element.id r.Mutation.killed in
      check_bool
        (Printf.sprintf "%s:%s agreement" e.Element.device (Element.name_of e))
        ifg_covered mut_covered)

let test_mutation_sees_competitor_suppression () =
  (* The class of elements only mutation coverage reports (§3.1): an
     import clause that *rejects a competitor* of the tested route. IFG
     coverage does not cover it; deleting it changes best-path selection
     and kills the tested fact. *)
  let ip = Ipv4.of_string in
  (* b hears 10.10.0.0/24 from a (good) and from c (a worse decoy that b
     would prefer on local-pref if its import filter did not reject it). *)
  let deny_decoy : Policy_ast.policy =
    {
      pol_name = "DENY-DECOY";
      terms =
        [
          {
            term_name = "block";
            matches = [ Policy_ast.Match_as_path_list "DECOY" ];
            actions = [ Policy_ast.Reject ];
          };
          {
            term_name = "boost";
            matches = [];
            actions = [ Policy_ast.Set_local_pref 200; Policy_ast.Accept ];
          };
        ];
    }
  in
  let devices =
    List.map
      (fun (d : Device.t) ->
        match d.hostname with
        | "b" ->
            {
              d with
              Device.policies = [ deny_decoy ];
              as_path_lists =
                [
                  {
                    Device.al_name = "DECOY";
                    al_patterns = [ As_regex.compile "_65003_" ];
                  };
                ];
              bgp =
                Option.map
                  (fun (bgp : Device.bgp_config) ->
                    {
                      bgp with
                      Device.neighbors =
                        List.map
                          (fun (n : Device.neighbor) ->
                            if Ipv4.equal n.nb_ip (ip "192.168.0.6") then
                              { n with Device.nb_import = [ "DENY-DECOY" ] }
                            else n)
                          bgp.neighbors;
                    })
                  d.bgp;
            }
        | "c" ->
            (* c originates a decoy for the same prefix *)
            {
              d with
              Device.interfaces =
                d.interfaces
                @ [ Device.interface ~address:(ip "10.10.0.222", 24) "decoy0" ];
              bgp =
                Option.map
                  (fun (bgp : Device.bgp_config) ->
                    { bgp with Device.networks = [ p "10.10.0.0/24" ] })
                  d.bgp;
            }
        | _ -> d)
      devices
  in
  let reg = Registry.build devices in
  let state = Stable_state.compute reg in
  (* the tested fact: b forwards 10.10.0.0/24 toward a *)
  let tested =
    List.filter_map
      (fun (e : Rib.main_entry) ->
        if e.me_nexthop = Rib.Nh_ip (ip "192.168.0.1") then
          Some (Fact.F_main_rib { host = "b"; entry = e })
        else None)
      (Stable_state.main_lookup state "b" (p "10.10.0.0/24"))
  in
  check_bool "baseline: b routes via a" true (tested <> []);
  let block_id =
    Option.get
      (Registry.find reg ~device:"b"
         (Element.key Element.Route_policy_clause "DENY-DECOY/block"))
  in
  (* IFG coverage: the blocking clause does NOT contribute to the fact *)
  let report = Netcov.analyze state { Netcov.dp_facts = tested; cp_elements = [] } in
  check_bool "IFG: block clause uncovered" true
    (Coverage.element_status report.Netcov.coverage block_id = Coverage.Not_covered);
  (* mutation coverage: deleting the clause flips best-path selection *)
  let r =
    Mutation.run reg ~oracle:(Mutation.facts_oracle tested)
      ~elements:[ block_id ] ()
  in
  check_bool "mutation: block clause killed" true
    (Element.Id_set.mem block_id r.Mutation.killed)

let test_strong_weak_vs_mutation_on_fattree () =
  (* Cross-validation of the two coverage definitions on ECMP-heavy
     state: strongly covered elements are exactly the ones whose
     deletion kills a tested fact; weakly covered elements survive
     deletion (their disjunctive alternatives take over). *)
  let ft = Netcov_workloads.Fattree.generate ~k:4 () in
  let reg = Registry.build ft.Netcov_workloads.Fattree.devices in
  let state = Stable_state.compute reg in
  let tested =
    List.concat_map
      (fun host ->
        List.map
          (fun entry -> Fact.F_main_rib { host; entry })
          (Stable_state.main_lookup state host Prefix.default))
      (ft.Netcov_workloads.Fattree.leaves @ ft.Netcov_workloads.Fattree.aggs
     @ ft.Netcov_workloads.Fattree.spines)
  in
  let report = Netcov.analyze state { Netcov.dp_facts = tested; cp_elements = [] } in
  let mut = Mutation.run reg ~oracle:(Mutation.facts_oracle tested) () in
  Registry.iter_elements reg (fun e ->
      let id = e.Element.id in
      if not (Element.Id_set.mem id mut.Mutation.skipped) then begin
        let name = e.Element.device ^ ":" ^ Element.name_of e in
        match Coverage.element_status report.Netcov.coverage id with
        | Coverage.Strong ->
            check_bool (name ^ ": strong is killed") true
              (Element.Id_set.mem id mut.Mutation.killed)
        | Coverage.Weak ->
            check_bool (name ^ ": weak survives") true
              (Element.Id_set.mem id mut.Mutation.survived)
        | Coverage.Not_covered -> ()
      end)

(* ---------------- over-deletion regression ---------------- *)

let test_delete_one_of_duplicates () =
  (* Two ECMP static routes to one prefix share an element key; a delete
     mutant must remove exactly one occurrence. The historical behavior
     filtered out every same-keyed entry at once, turning the pair into
     a single over-strong mutant and inflating kill counts. *)
  let ip = Ipv4.of_string in
  let d =
    Device.make
      ~static_routes:
        [
          { Device.st_prefix = p "10.50.0.0/16"; st_next_hop = ip "192.168.0.1" };
          { Device.st_prefix = p "10.50.0.0/16"; st_next_hop = ip "192.168.0.2" };
        ]
      "d"
  in
  let key = Element.key Element.Static_route "10.50.0.0/16" in
  Alcotest.(check int) "two occurrences" 2 (Mutation.occurrences d key);
  (match Mutation.delete_element d key with
  | None -> Alcotest.fail "expected deletion"
  | Some d' ->
      Alcotest.(check int)
        "exactly one removed" 1
        (List.length d'.Device.static_routes);
      check_bool "the second occurrence survives" true
        (List.exists
           (fun (s : Device.static_route) ->
             Ipv4.equal s.st_next_hop (ip "192.168.0.2"))
           d'.Device.static_routes));
  (match Mutation.delete_element ~occurrence:1 d key with
  | None -> Alcotest.fail "expected deletion of occurrence 1"
  | Some d' ->
      check_bool "occurrence 1 removes the other entry" true
        (List.exists
           (fun (s : Device.static_route) ->
             Ipv4.equal s.st_next_hop (ip "192.168.0.1"))
           d'.Device.static_routes));
  Alcotest.(check int)
    "one delete mutant per occurrence" 2
    (List.length (Mutation.op_delete.Mutation.op_mutate d key))

(* ---------------- warm vs scratch differential ---------------- *)

let test_warm_matches_scratch () =
  let reg = Lazy.force reg in
  let oracle = Mutation.facts_oracle (Lazy.force tested_facts) in
  let warm = Mutation.run reg ~oracle ~mode:Mutation.Warm () in
  let scratch = Mutation.run reg ~oracle ~mode:Mutation.Scratch () in
  check_bool "killed identical" true
    (Element.Id_set.equal warm.Mutation.killed scratch.Mutation.killed);
  check_bool "survived identical" true
    (Element.Id_set.equal warm.Mutation.survived scratch.Mutation.survived);
  check_bool "skipped identical" true
    (Element.Id_set.equal warm.Mutation.skipped scratch.Mutation.skipped)

(* ---------------- falsifiability ---------------- *)

module Incr = Netcov_incr.Incr
module Nettest = Netcov_nettest.Nettest

let check_falsifiable name (reg : Registry.t) (fz : Incr.falsifiability) =
  (match (fz.Incr.fz_missed, fz.Incr.fz_divergent) with
  | [], [] -> ()
  | _ -> Alcotest.fail (Incr.falsifiability_summary reg fz));
  check_bool (name ^ ": sampled some strong elements") true
    (fz.Incr.fz_strong <> [])

let test_falsifiability_fattree_default_route () =
  (* The fat-tree default-route suite: every strongly covered element's
     deletion must kill a tested fact (modulo the documented
     fall-through masking class), every uncovered element's deletion
     must kill none (modulo the competitor class). *)
  let ft = Netcov_workloads.Fattree.generate ~k:4 () in
  let reg = Registry.build ft.Netcov_workloads.Fattree.devices in
  let state = Stable_state.compute reg in
  let t = Netcov_nettest.Datacenter.default_route_check ft in
  let r = t.Nettest.run state in
  let session, (_ : Incr.stats) = Incr.create state [ r.Nettest.tested ] in
  let fz = Incr.falsifiability ~max_elements:24 session in
  check_falsifiable "fattree" (Incr.registry session) fz

let test_falsifiability_internet2 () =
  let net =
    Netcov_workloads.Internet2.generate Netcov_workloads.Internet2.test_params
  in
  let reg = Registry.build net.Netcov_workloads.Internet2.devices in
  let state = Stable_state.compute reg in
  let testeds =
    List.map
      (fun (t : Nettest.t) -> (t.Nettest.run state).Nettest.tested)
      (Netcov_nettest.Bagpipe.suite net)
  in
  let session, (_ : Incr.stats) = Incr.create state testeds in
  let fz = Incr.falsifiability ~max_elements:24 session in
  check_falsifiable "internet2" (Incr.registry session) fz

let test_skipped_accounting () =
  let r = Lazy.force mutation_result in
  let reg = Lazy.force reg in
  Alcotest.(check int)
    "every element classified"
    (Registry.n_elements reg)
    (Element.Id_set.cardinal r.Mutation.killed
    + Element.Id_set.cardinal r.Mutation.survived
    + Element.Id_set.cardinal r.Mutation.skipped)

let () =
  Alcotest.run "mutation"
    [
      ( "delete",
        [
          Alcotest.test_case "interface" `Quick test_delete_interface;
          Alcotest.test_case "missing" `Quick test_delete_missing;
          Alcotest.test_case "network statement" `Quick test_delete_network_statement;
          Alcotest.test_case "policy clause" `Quick test_delete_policy_clause;
          Alcotest.test_case "one of duplicates" `Quick
            test_delete_one_of_duplicates;
        ] );
      ("facts", [ Alcotest.test_case "fact_holds" `Quick test_fact_holds ]);
      ( "analysis",
        [
          Alcotest.test_case "kills derivation chain" `Slow
            test_mutation_kills_derivation_chain;
          Alcotest.test_case "agrees with IFG (conjunctive)" `Slow
            test_mutation_agrees_with_ifg_on_chain;
          Alcotest.test_case "sees competitor suppression" `Slow
            test_mutation_sees_competitor_suppression;
          Alcotest.test_case "strong/weak vs mutation (fat-tree)" `Slow
            test_strong_weak_vs_mutation_on_fattree;
          Alcotest.test_case "accounting" `Slow test_skipped_accounting;
        ] );
      ( "execution",
        [
          Alcotest.test_case "warm matches scratch" `Slow
            test_warm_matches_scratch;
        ] );
      ( "falsifiability",
        [
          Alcotest.test_case "fattree default-route" `Slow
            test_falsifiability_fattree_default_route;
          Alcotest.test_case "internet2 bagpipe" `Slow
            test_falsifiability_internet2;
        ] );
    ]
