open Netcov_config
open Netcov_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let f name = Fact.F_edge name
let cfg id = Fact.F_config id

let set_of ids = Element.Id_set.of_list ids
let eq_set = Alcotest.testable
    (fun fmt s ->
      Format.fprintf fmt "{%s}"
        (String.concat "," (List.map string_of_int (Element.Id_set.elements s))))
    Element.Id_set.equal

(* Figure 5(b): F1 tested; F1 <- disj(F2,F3) and F1 <- F4;
   F2 <- c5, c6; F3 <- c6; F4 <- c7.
   Expected: c5 weak; c6, c7 strong. *)
let figure5 () =
  let g = Ifg.create () in
  let add x = fst (Ifg.add_fact g x) in
  let f1 = add (f "F1") and f2 = add (f "F2") and f3 = add (f "F3") in
  let f4 = add (f "F4") in
  let c5 = add (cfg 5) and c6 = add (cfg 6) and c7 = add (cfg 7) in
  ignore (Ifg.add_disj g ~target:f1 [ f "F2"; f "F3" ]);
  Ifg.add_edge g ~parent:f4 ~child:f1;
  Ifg.add_edge g ~parent:c5 ~child:f2;
  Ifg.add_edge g ~parent:c6 ~child:f2;
  Ifg.add_edge g ~parent:c6 ~child:f3;
  Ifg.add_edge g ~parent:c7 ~child:f4;
  (g, f1)

let test_figure5 () =
  let g, f1 = figure5 () in
  let r = Label.run g ~tested:[ f1 ] in
  Alcotest.check eq_set "covered" (set_of [ 5; 6; 7 ]) r.Label.covered;
  Alcotest.check eq_set "strong" (set_of [ 6; 7 ]) r.Label.strong;
  Alcotest.check eq_set "weak" (set_of [ 5 ]) r.Label.weak

let test_heuristic_reduces_vars () =
  let g, f1 = figure5 () in
  let r = Label.run g ~tested:[ f1 ] in
  (* c7 has a disjunction-free path: it must not get a variable *)
  check_bool "vars at most 2" true (r.Label.vars <= 2)

(* Pure conjunction: every config strong. *)
let test_all_conjunctive () =
  let g = Ifg.create () in
  let add x = fst (Ifg.add_fact g x) in
  let t = add (f "t") and m = add (f "m") in
  let c1 = add (cfg 1) and c2 = add (cfg 2) in
  Ifg.add_edge g ~parent:m ~child:t;
  Ifg.add_edge g ~parent:c1 ~child:m;
  Ifg.add_edge g ~parent:c2 ~child:t;
  let r = Label.run g ~tested:[ t ] in
  Alcotest.check eq_set "all strong" (set_of [ 1; 2 ]) r.Label.strong;
  check_int "no vars needed" 0 r.Label.vars

(* A disjunction where one branch is empty of configs: everything under
   the other branch is weak (the empty branch derives the fact alone). *)
let test_environment_alternative () =
  let g = Ifg.create () in
  let add x = fst (Ifg.add_fact g x) in
  let t = add (f "t") in
  let via_cfg = add (f "via-cfg") and via_env = add (f "via-env") in
  ignore via_env;
  let c1 = add (cfg 1) in
  ignore (Ifg.add_disj g ~target:t [ f "via-cfg"; f "via-env" ]);
  Ifg.add_edge g ~parent:c1 ~child:via_cfg;
  let r = Label.run g ~tested:[ t ] in
  Alcotest.check eq_set "c1 weak" (set_of [ 1 ]) r.Label.weak

(* Shared disjunction members: c appears in every alternative, so it is
   strong even through the disjunction. *)
let test_common_member_strong () =
  let g = Ifg.create () in
  let add x = fst (Ifg.add_fact g x) in
  let t = add (f "t") in
  let alt1 = add (f "alt1") and alt2 = add (f "alt2") in
  let shared = add (cfg 1) and only1 = add (cfg 2) in
  ignore (Ifg.add_disj g ~target:t [ f "alt1"; f "alt2" ]);
  Ifg.add_edge g ~parent:shared ~child:alt1;
  Ifg.add_edge g ~parent:shared ~child:alt2;
  Ifg.add_edge g ~parent:only1 ~child:alt1;
  let r = Label.run g ~tested:[ t ] in
  check_bool "shared strong" true (Element.Id_set.mem 1 r.Label.strong);
  check_bool "only1 weak" true (Element.Id_set.mem 2 r.Label.weak)

(* Multiple tested facts: strong for any one of them suffices. *)
let test_multiple_tested () =
  let g = Ifg.create () in
  let add x = fst (Ifg.add_fact g x) in
  let t1 = add (f "t1") and t2 = add (f "t2") in
  let alt1 = add (f "alt1") and alt2 = add (f "alt2") in
  let c1 = add (cfg 1) in
  (* weak for t1 (alternative exists), strong for t2 (direct) *)
  ignore (Ifg.add_disj g ~target:t1 [ f "alt1"; f "alt2" ]);
  Ifg.add_edge g ~parent:c1 ~child:alt1;
  ignore alt2;
  Ifg.add_edge g ~parent:c1 ~child:t2;
  let r = Label.run g ~tested:[ t1; t2 ] in
  Alcotest.check eq_set "strong overall" (set_of [ 1 ]) r.Label.strong

let test_empty_graph () =
  let g = Ifg.create () in
  let r = Label.run g ~tested:[] in
  check_bool "nothing" true (Element.Id_set.is_empty r.Label.covered)

let test_nested_disjunctions () =
  (* t <- disj(a, b); a <- disj(c1-fact, c2-fact); b <- c3.
     c3 strong? No: b is one alternative. c1/c2 weak; c3 weak too.
     But removing all three kills t, so no single one is necessary. *)
  let g = Ifg.create () in
  let add x = fst (Ifg.add_fact g x) in
  let t = add (f "t") in
  let a = add (f "a") and b = add (f "b") in
  let x1 = add (f "x1") and x2 = add (f "x2") in
  let c1 = add (cfg 1) and c2 = add (cfg 2) and c3 = add (cfg 3) in
  ignore (Ifg.add_disj g ~target:t [ f "a"; f "b" ]);
  ignore (Ifg.add_disj g ~target:a [ f "x1"; f "x2" ]);
  Ifg.add_edge g ~parent:c1 ~child:x1;
  Ifg.add_edge g ~parent:c2 ~child:x2;
  Ifg.add_edge g ~parent:c3 ~child:b;
  let r = Label.run g ~tested:[ t ] in
  Alcotest.check eq_set "all weak" (set_of [ 1; 2; 3 ]) r.Label.weak;
  Alcotest.check eq_set "none strong" Element.Id_set.empty r.Label.strong

(* ------------------------------------------------------------------ *)
(* Shared-arena engine vs the fresh-per-cone reference                 *)
(* ------------------------------------------------------------------ *)

module Pool = Netcov_parallel.Pool

(* Every scenario above, as (name, graph, tested roots) for the
   engine-equality sweep. Graphs are rebuilt per call: Ifg.t is
   mutable and labeling consumes it per pass. *)
let scenarios () =
  let build make =
    let g = Ifg.create () in
    let add x = fst (Ifg.add_fact g x) in
    (g, make g add)
  in
  [
    ("figure5", (let g, f1 = figure5 () in (g, [ f1 ])));
    ( "conjunctive",
      build (fun g add ->
          let t = add (f "t") and m = add (f "m") in
          let c1 = add (cfg 1) and c2 = add (cfg 2) in
          Ifg.add_edge g ~parent:m ~child:t;
          Ifg.add_edge g ~parent:c1 ~child:m;
          Ifg.add_edge g ~parent:c2 ~child:t;
          [ t ]) );
    ( "nested-disj",
      build (fun g add ->
          let t = add (f "t") in
          let a = add (f "a") and b = add (f "b") in
          let x1 = add (f "x1") and x2 = add (f "x2") in
          let c1 = add (cfg 1) and c2 = add (cfg 2) and c3 = add (cfg 3) in
          ignore (Ifg.add_disj g ~target:t [ f "a"; f "b" ]);
          ignore (Ifg.add_disj g ~target:a [ f "x1"; f "x2" ]);
          Ifg.add_edge g ~parent:c1 ~child:x1;
          Ifg.add_edge g ~parent:c2 ~child:x2;
          Ifg.add_edge g ~parent:c3 ~child:b;
          ignore (a, b, x1, x2);
          [ t ]) );
    ( "multi-tested",
      build (fun g add ->
          let t1 = add (f "t1") and t2 = add (f "t2") in
          let alt1 = add (f "alt1") and alt2 = add (f "alt2") in
          let c1 = add (cfg 1) in
          ignore (Ifg.add_disj g ~target:t1 [ f "alt1"; f "alt2" ]);
          Ifg.add_edge g ~parent:c1 ~child:alt1;
          ignore alt2;
          Ifg.add_edge g ~parent:c1 ~child:t2;
          [ t1; t2 ]) );
  ]

let check_engines_agree ?pool name g tested =
  let fresh = Label.run ~arena:false g ~tested in
  let arena = Label.run ~arena:true ?pool g ~tested in
  Alcotest.check eq_set (name ^ ": covered agrees") fresh.Label.covered
    arena.Label.covered;
  Alcotest.check eq_set (name ^ ": strong agrees") fresh.Label.strong
    arena.Label.strong;
  Alcotest.check eq_set (name ^ ": weak agrees") fresh.Label.weak
    arena.Label.weak

let test_engines_agree () =
  List.iter (fun (name, (g, tested)) -> check_engines_agree name g tested)
    (scenarios ())

let test_engines_agree_pool () =
  Pool.with_pool ~domains:2 (fun pool ->
      List.iter
        (fun (name, (g, tested)) -> check_engines_agree ~pool name g tested)
        (scenarios ()))

(* Past the per-cone variable cap the arena engine must fall back to
   the legacy path (the cap subset is defined by per-cone discovery
   order), and both engines must still agree. n > max_cone_vars = 8192
   configs sit behind one alternative; the other alternative is
   config-free, so the cone predicate collapses to true and every
   config is weak — which keeps the test linear in n instead of
   paying the legacy engine's quadratic necessity loop over 8k
   variables. *)
let test_capped_cone_agrees () =
  let n = 8300 in
  let g = Ifg.create () in
  let add x = fst (Ifg.add_fact g x) in
  let t = add (f "t") in
  for i = 0 to n - 1 do
    (* x_i <- disj(alt_i, env_i); c_i -> alt_i; env_i is config-free,
       so each x_i's predicate is (v_i or true) = true and the BDD
       work stays constant per candidate. *)
    let x = add (f (Printf.sprintf "x%d" i)) in
    let alt = Printf.sprintf "alt%d" i and envf = Printf.sprintf "env%d" i in
    ignore
      (Ifg.add_disj g ~target:x [ Fact.F_edge alt; Fact.F_edge envf ]);
    let c = add (cfg i) in
    Ifg.add_edge g ~parent:c ~child:(fst (Ifg.add_fact g (Fact.F_edge alt)));
    Ifg.add_edge g ~parent:x ~child:t
  done;
  let fresh = Label.run ~arena:false g ~tested:[ t ] in
  let arena = Label.run ~arena:true g ~tested:[ t ] in
  Alcotest.check eq_set "capped: strong agrees" fresh.Label.strong
    arena.Label.strong;
  Alcotest.check eq_set "capped: weak agrees" fresh.Label.weak
    arena.Label.weak;
  check_int "capped: covered size" n
    (Element.Id_set.cardinal arena.Label.covered);
  Alcotest.check eq_set "capped: nothing strong" Element.Id_set.empty
    arena.Label.strong

(* Trimming the calling domain's arena between passes must shrink it
   back to the creation footprint and leave labels unchanged. *)
let test_arena_trim () =
  Label.trim_arena ();
  let g, f1 = figure5 () in
  let r1 = Label.run ~arena:true g ~tested:[ f1 ] in
  check_bool "arena grew during the pass" true (Label.arena_node_count () >= 2);
  let grown = Label.arena_node_count () in
  Label.trim_arena ();
  check_bool "trim shrank the arena" true (Label.arena_node_count () <= grown);
  check_int "trim leaves only terminals" 2 (Label.arena_node_count ());
  let g2, f1' = figure5 () in
  let r2 = Label.run ~arena:true g2 ~tested:[ f1' ] in
  Alcotest.check eq_set "strong unchanged after trim" r1.Label.strong
    r2.Label.strong;
  Alcotest.check eq_set "weak unchanged after trim" r1.Label.weak
    r2.Label.weak

(* A tiny watermark forces a self-trim on entry to every labeling
   task; results must not change. *)
let test_arena_watermark () =
  check_bool "watermark below 2 rejected" true
    (match Label.set_arena_watermark 1 with
    | () -> false
    | exception Invalid_argument _ -> true);
  Label.set_arena_watermark 2;
  Fun.protect
    ~finally:(fun () -> Label.set_arena_watermark (1 lsl 20))
    (fun () ->
      let g, f1 = figure5 () in
      let r = Label.run ~arena:true g ~tested:[ f1 ] in
      Alcotest.check eq_set "strong under constant trimming"
        (set_of [ 6; 7 ]) r.Label.strong;
      Alcotest.check eq_set "weak under constant trimming" (set_of [ 5 ])
        r.Label.weak)

let () =
  Alcotest.run "label"
    [
      ( "strong-weak",
        [
          Alcotest.test_case "figure 5 scenario" `Quick test_figure5;
          Alcotest.test_case "variable heuristic" `Quick test_heuristic_reduces_vars;
          Alcotest.test_case "all conjunctive" `Quick test_all_conjunctive;
          Alcotest.test_case "environment alternative" `Quick test_environment_alternative;
          Alcotest.test_case "common member strong" `Quick test_common_member_strong;
          Alcotest.test_case "multiple tested" `Quick test_multiple_tested;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "nested disjunctions" `Quick test_nested_disjunctions;
        ] );
      ( "arena",
        [
          Alcotest.test_case "engines agree (sequential)" `Quick
            test_engines_agree;
          Alcotest.test_case "engines agree (2-domain pool)" `Quick
            test_engines_agree_pool;
          Alcotest.test_case "capped cone falls back identically" `Quick
            test_capped_cone_agrees;
          Alcotest.test_case "trim shrinks, labels unchanged" `Quick
            test_arena_trim;
          Alcotest.test_case "tiny watermark self-trims safely" `Quick
            test_arena_watermark;
        ] );
    ]
