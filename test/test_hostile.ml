(* Hostile scenario corpus (test/corpus-hostile/): ACL shadowing,
   summary-only aggregation, deaggregation, duplicate hostnames and a
   malformed stanza. Everything hostile must degrade into diagnostics
   — never abort — and on the surviving network the control plane must
   converge to the documented routes, with warm mutant execution
   verdict-identical to scratch. *)
open Netcov_types
open Netcov_config
open Netcov_sim
open Netcov_core
module Diag = Netcov_diag.Diag
module Incr = Netcov_incr.Incr

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Prefix.of_string

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Explicit order: the genuine h3.cfg must precede the impostor
   h3-dup.cfg, because build_lenient keeps the first definition. *)
let corpus_files = [ "h1.cfg"; "h2.cfg"; "h3.cfg"; "h3-dup.cfg" ]

(* dune runtest runs in _build/default/test; dune exec from the root. *)
let corpus_dir =
  if Sys.file_exists "corpus-hostile" then "corpus-hostile"
  else "test/corpus-hostile"

let parsed =
  lazy
    (List.map
       (fun f ->
         let path = Filename.concat corpus_dir f in
         match Parse_junos.parse_lenient ~file:f (read_file path) with
         | Ok (d, diags) -> (f, d, diags)
         | Error d -> Alcotest.failf "%s: fatal parse: %s" f (Diag.to_string d))
       corpus_files)

let registry_and_diags =
  lazy
    (Registry.build_lenient
       (List.map (fun (_, d, _) -> d) (Lazy.force parsed)))

let state =
  lazy
    (let reg, _ = Lazy.force registry_and_diags in
     let c = Diag.collector () in
     let st = Stable_state.compute ~diags:(Diag.sink c) reg in
     (st, Diag.items c))

let tested_facts =
  lazy
    (let st, _ = Lazy.force state in
     List.concat_map
       (fun pfx ->
         List.map
           (fun entry -> Fact.F_main_rib { host = "h1"; entry })
           (Stable_state.main_lookup st "h1" (p pfx)))
       [ "10.80.0.0/16"; "10.81.0.0/24" ])

(* ---------------- parsing under hostility ---------------- *)

let test_lenient_parse () =
  List.iter
    (fun (f, d, diags) ->
      if f = "h3-dup.cfg" then begin
        check_int "impostor: one recovered stanza" 1 (List.length diags);
        let d0 = List.hd diags in
        check_bool "recovered kind" true (d0.Diag.kind = Diag.Parse_recovered);
        check_bool "hostname still parsed" true (d.Device.hostname = "h3");
        check_bool "bad prefix-list dropped" true
          (Device.find_prefix_list d "BAD-LIST" = None);
        check_bool "sibling prefix-list kept" true
          (Device.find_prefix_list d "OK-LIST" <> None)
      end
      else check_int (f ^ ": parses clean") 0 (List.length diags))
    (Lazy.force parsed)

let test_duplicate_host () =
  let reg, diags = Lazy.force registry_and_diags in
  let dups = List.filter (fun d -> d.Diag.kind = Diag.Duplicate_host) diags in
  check_int "one duplicate-host diagnostic" 1 (List.length dups);
  check_bool "names the contested hostname" true
    ((List.hd dups).Diag.device = Some "h3");
  check_int "impostor dropped from the registry" 3
    (List.length (Registry.devices reg));
  (* The first definition won: the genuine h3 has the eBGP session. *)
  check_bool "genuine h3 kept" true
    ((Registry.device reg "h3").Device.bgp <> None)

(* ---------------- convergence and semantics ---------------- *)

let test_convergence () =
  let st, diags = Lazy.force state in
  check_bool "no error diagnostics" true
    (not (List.exists Diag.is_error diags));
  (* Summary-only aggregation: h1 sees the /16 aggregate but neither
     suppressed /24 contributor. *)
  check_bool "aggregate reaches h1" true
    (Stable_state.main_lookup st "h1" (p "10.80.0.0/16") <> []);
  check_bool "contributor suppressed" true
    (Stable_state.main_lookup st "h1" (p "10.80.1.0/24") = []);
  (* Deaggregation meets policy: h2's import rejects exactly the low
     /17, the high /17 gets through. *)
  check_bool "blocked deaggregate absent" true
    (Stable_state.main_lookup st "h2" (p "10.77.0.0/17") = []);
  check_bool "admitted deaggregate present" true
    (Stable_state.main_lookup st "h2" (p "10.77.128.0/17") <> []);
  (* h3's LAN propagates across the eBGP edge and the next-hop-self
     iBGP hop. *)
  check_bool "external LAN reaches h1" true
    (Stable_state.main_lookup st "h1" (p "10.81.0.0/24") <> [])

let test_ecmp_duplicates () =
  let reg, _ = Lazy.force registry_and_diags in
  let h1 = Registry.device reg "h1" in
  check_int "two same-prefix statics survive parsing" 2
    (Mutation.occurrences h1 (Element.key Element.Static_route "10.77.0.0/16"));
  let st, _ = Lazy.force state in
  check_bool "the covering /16 is installed" true
    (Stable_state.main_lookup st "h1" (p "10.77.0.0/16") <> [])

let test_acl_shadowing () =
  let reg, _ = Lazy.force registry_and_diags in
  let h1 = Registry.device reg "h1" in
  let acl = Option.get (Device.find_acl h1 "SVC-PROTECT") in
  check_bool "blocked range rejected" true
    (not (fst (Device.acl_permits acl (Ipv4.of_string "10.9.255.5"))));
  check_bool "service range admitted" true
    (fst (Device.acl_permits acl (Ipv4.of_string "10.9.100.5")));
  (* The later reject term is shadowed by the broader accept. *)
  check_bool "shadowed deny never fires" true
    (fst (Device.acl_permits acl (Ipv4.of_string "10.9.100.200")))

(* ---------------- mutation engine on the hostile net ---------------- *)

let test_warm_matches_scratch () =
  let reg, _ = Lazy.force registry_and_diags in
  let oracle = Mutation.facts_oracle (Lazy.force tested_facts) in
  let warm = Mutation.run reg ~oracle ~mode:Mutation.Warm () in
  let scratch = Mutation.run reg ~oracle ~mode:Mutation.Scratch () in
  check_bool "killed identical" true
    (Element.Id_set.equal warm.Mutation.killed scratch.Mutation.killed);
  check_bool "survived identical" true
    (Element.Id_set.equal warm.Mutation.survived scratch.Mutation.survived);
  check_bool "skipped identical" true
    (Element.Id_set.equal warm.Mutation.skipped scratch.Mutation.skipped)

let test_falsifiability () =
  let st, _ = Lazy.force state in
  let tested = { Netcov.dp_facts = Lazy.force tested_facts; cp_elements = [] } in
  let session, _ = Incr.create st [ tested ] in
  let fz = Incr.falsifiability session in
  let reg, _ = Lazy.force registry_and_diags in
  if fz.Incr.fz_missed <> [] || fz.Incr.fz_divergent <> [] then
    Alcotest.fail (Incr.falsifiability_summary reg fz)

let () =
  Alcotest.run "hostile"
    [
      ( "diagnostics",
        [
          Alcotest.test_case "lenient parse" `Quick test_lenient_parse;
          Alcotest.test_case "duplicate host" `Quick test_duplicate_host;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "convergence" `Quick test_convergence;
          Alcotest.test_case "ecmp duplicates" `Quick test_ecmp_duplicates;
          Alcotest.test_case "acl shadowing" `Quick test_acl_shadowing;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "warm matches scratch" `Slow
            test_warm_matches_scratch;
          Alcotest.test_case "falsifiability" `Slow test_falsifiability;
        ] );
    ]
