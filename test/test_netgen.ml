(* Global invariants of the stable state on random eBGP tree networks:
   full propagation, loop-free forwarding, AS-path sanity, best-path
   uniqueness, and end-to-end coverage totality. *)
open Netcov_types
open Netcov_config
open Netcov_sim
open Netcov_core

let state_of spec = Stable_state.compute (Registry.build (Netgen.devices_of spec))

let routers (s : Netgen.spec) = List.init s.n_routers Netgen.host

let prop_full_propagation =
  QCheck.Test.make ~name:"every router learns every LAN" ~count:60
    Netgen.arbitrary_spec (fun spec ->
      let state = state_of spec in
      List.for_all
        (fun r ->
          List.for_all
            (fun (_, lan) -> Stable_state.main_lookup state r lan <> [])
            spec.Netgen.lans)
        (routers spec))

let prop_forwarding_reaches =
  QCheck.Test.make ~name:"forwarding is loop-free and delivers" ~count:40
    Netgen.arbitrary_spec (fun spec ->
      let state = state_of spec in
      List.for_all
        (fun r ->
          List.for_all
            (fun (_, lan) ->
              let dst = Prefix.first_host lan in
              let paths = Stable_state.trace state ~src:r ~dst in
              paths <> []
              && List.for_all
                   (fun (q : Forward.path) ->
                     (* reached, and no host repeats on the path *)
                     q.reached
                     &&
                     let hosts =
                       List.map (fun (h : Forward.hop) -> h.hop_host) q.hops
                     in
                     List.length hosts
                     = List.length (List.sort_uniq String.compare hosts))
                   paths)
            spec.Netgen.lans)
        (routers spec))

let prop_as_path_tree_distance =
  QCheck.Test.make ~name:"AS-path length equals tree distance" ~count:60
    Netgen.arbitrary_spec (fun spec ->
      let state = state_of spec in
      (* distance in the tree between routers i and j *)
      let rec ancestors i = if i = 0 then [ 0 ] else i :: ancestors spec.Netgen.parent.(i) in
      let distance i j =
        let ai = ancestors i and aj = ancestors j in
        let common = List.find (fun a -> List.mem a aj) ai in
        let depth_to l target =
          let rec go n = function
            | x :: rest -> if x = target then n else go (n + 1) rest
            | [] -> assert false
          in
          go 0 l
        in
        depth_to ai common + depth_to aj common
      in
      List.for_all
        (fun i ->
          List.for_all
            (fun (j, lan) ->
              if i = j then true
              else
                match
                  Stable_state.bgp_lookup_best state (Netgen.host i) lan
                with
                | [] -> false
                | e :: _ ->
                    As_path.length e.Rib.be_route.Route.as_path = distance i j)
            spec.Netgen.lans)
        (List.init spec.Netgen.n_routers Fun.id))

let prop_single_best_without_multipath =
  QCheck.Test.make ~name:"unique best path on trees" ~count:60
    Netgen.arbitrary_spec (fun spec ->
      let state = state_of spec in
      (* a tree has a unique route between any two nodes, so even with
         multipath enabled there is exactly one best entry *)
      List.for_all
        (fun r ->
          List.for_all
            (fun (j, lan) ->
              if Netgen.host j = r then true
              else
                List.length (Stable_state.bgp_lookup_best state r lan) = 1)
            spec.Netgen.lans)
        (routers spec))

let prop_coverage_total =
  QCheck.Test.make ~name:"coverage of all LANs covers all live BGP config"
    ~count:25 Netgen.arbitrary_spec (fun spec ->
      let state = state_of spec in
      (* test every LAN everywhere: all peers, interfaces and network
         statements must be covered (the tree uses all of them) *)
      let tested =
        List.concat_map
          (fun r ->
            List.concat_map
              (fun (_, lan) ->
                List.map
                  (fun entry -> Fact.F_main_rib { host = r; entry })
                  (Stable_state.main_lookup state r lan))
              spec.Netgen.lans)
          (routers spec)
      in
      let report = Netcov.analyze state { Netcov.dp_facts = tested; cp_elements = [] } in
      let reg = Stable_state.registry state in
      let all_covered = ref true in
      Registry.iter_elements reg (fun e ->
          match Element.etype_of e with
          | Element.Interface | Element.Bgp_peer | Element.Bgp_network ->
              if
                Coverage.element_status report.Netcov.coverage e.Element.id
                = Coverage.Not_covered
              then all_covered := false
          | _ -> ());
      !all_covered)

let prop_deterministic_state =
  QCheck.Test.make ~name:"simulation is deterministic" ~count:30
    Netgen.arbitrary_spec (fun spec ->
      let s1 = state_of spec and s2 = state_of spec in
      Stable_state.total_main_entries s1 = Stable_state.total_main_entries s2
      && Stable_state.total_bgp_entries s1 = Stable_state.total_bgp_entries s2
      && Stable_state.rounds s1 = Stable_state.rounds s2)

(* ---------------- deterministic balanced mega-trees ---------------- *)

(* The netgen-1000 bench workload is Netcov_check.Netgen.balanced; these
   check its structure (including the >255-router octet spill) and that
   its deterministic specs materialize into a working analysis, without
   paying a 1000-router simulation in the test suite. *)
module Cgen = Netcov_check.Netgen

let test_balanced_structure () =
  let net = Cgen.balanced ~fanout:4 600 in
  Alcotest.(check int) "router count" 600 net.Cgen.n_routers;
  for i = 1 to 599 do
    if net.Cgen.parent.(i) <> (i - 1) / 4 then
      Alcotest.failf "parent of %d is %d, expected %d" i net.Cgen.parent.(i)
        ((i - 1) / 4)
  done;
  List.iter
    (fun i ->
      if not (i > 0 && i mod 7 = 1) then
        Alcotest.failf "unexpected policied router %d" i)
    net.Cgen.policied;
  (* the octet spill keeps LANs (and so router ids) distinct past 255 *)
  let lans = List.init 600 Cgen.lan in
  Alcotest.(check int) "distinct LAN prefixes" 600
    (List.length (List.sort_uniq Prefix.compare lans));
  Alcotest.(check int) "device per router" 600
    (List.length (Cgen.devices_of net))

let test_balanced_specs_analyze () =
  let net = Cgen.balanced ~fanout:3 40 in
  let state = Stable_state.compute (Registry.build (Cgen.devices_of net)) in
  let specs = Cgen.balanced_specs ~n_tests:8 ~probes_per_test:4 net in
  Alcotest.(check int) "spec count" 8 (List.length specs);
  Alcotest.(check bool) "specs are deterministic" true
    (specs = Cgen.balanced_specs ~n_tests:8 ~probes_per_test:4 net);
  let testeds = List.map (Cgen.tested_of state) specs in
  Alcotest.(check bool) "probes hit the RIB" true
    (List.exists (fun (t : Netcov.tested) -> t.Netcov.dp_facts <> []) testeds);
  let merged = Netcov.merge_reports (Netcov.analyze_suite state testeds) in
  Alcotest.(check bool) "some coverage" true
    (Coverage.pct (Coverage.line_stats merged.Netcov.coverage) > 0.)

let () =
  Alcotest.run "netgen"
    [
      ( "invariants",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_full_propagation;
            prop_forwarding_reaches;
            prop_as_path_tree_distance;
            prop_single_best_without_multipath;
            prop_coverage_total;
            prop_deterministic_state;
          ] );
      ( "balanced",
        [
          Alcotest.test_case "structure + octet spill" `Quick
            test_balanced_structure;
          Alcotest.test_case "deterministic specs analyze" `Quick
            test_balanced_specs_analyze;
        ] );
    ]
