(* Tests for the observability layer (Netcov_obs): span collection and
   ordering, ring-buffer overflow, histogram bucketing, cross-domain
   registry merging, the versioned JSON exports (validated against the
   schema documented in docs/OBSERVABILITY.md), and the guarantee that
   tracing never changes coverage reports. *)
open Netcov_core
open Netcov_sim
open Netcov_config
module T = Netcov_obs.Trace
module M = Netcov_obs.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser, for validating exports without dependencies    *)
(* ------------------------------------------------------------------ *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %c" c);
    advance ()
  in
  let lit word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              (* decoded code points are irrelevant to these tests *)
              advance ();
              advance ();
              advance ();
              Buffer.add_char b '?'
          | c -> Buffer.add_char b c);
          advance ();
          go ()
      | '\000' -> fail "unterminated string"
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while num_char (peek ()) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    float_of_string (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            if peek () = ',' then begin
              advance ();
              members ()
            end
            else expect '}'
          in
          members ();
          J_obj (List.rev !fields)
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          J_list []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            if peek () = ',' then begin
              advance ();
              elements ()
            end
            else expect ']'
          in
          elements ();
          J_list (List.rev !items)
        end
    | '"' -> J_str (parse_string ())
    | 't' -> lit "true" (J_bool true)
    | 'f' -> lit "false" (J_bool false)
    | 'n' -> lit "null" J_null
    | _ -> J_num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing characters";
  v

let field name = function
  | J_obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> Alcotest.failf "missing field %S" name)
  | _ -> Alcotest.failf "not an object (looking for %S)" name

let as_num = function
  | J_num f -> f
  | _ -> Alcotest.fail "expected a number"

let as_list = function
  | J_list l -> l
  | _ -> Alcotest.fail "expected an array"

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  T.enable ();
  let r =
    T.with_span "outer" (fun () ->
        T.with_span "inner" (fun () -> 6 * 7))
  in
  T.disable ();
  check_int "with_span returns the thunk's value" 42 r;
  match T.events () with
  | [ outer; inner ] ->
      check_str "parent first" "outer" outer.T.ev_name;
      check_str "child second" "inner" inner.T.ev_name;
      check_bool "child starts after parent" true
        (inner.T.ev_ts_us >= outer.T.ev_ts_us);
      check_bool "child ends before parent" true
        (inner.T.ev_ts_us +. inner.T.ev_dur_us
        <= outer.T.ev_ts_us +. outer.T.ev_dur_us +. 1e-6)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_on_exception () =
  T.enable ();
  (try T.with_span "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  T.disable ();
  check_int "span recorded despite the raise" 1
    (List.length (T.find_spans "boom"))

let test_disabled_records_nothing () =
  T.enable ();
  T.clear ();
  T.disable ();
  T.with_span "quiet" (fun () -> ());
  T.instant "quiet-marker";
  check_int "no events while disabled" 0 (List.length (T.events ()))

let test_ring_overflow () =
  T.enable ~capacity:16 ();
  for i = 1 to 40 do
    T.instant "tick" ~args:[ ("i", T.I i) ]
  done;
  T.disable ();
  check_int "ring keeps the newest [capacity] events" 16
    (List.length (T.events ()));
  check_int "dropped counts the overwritten events" 24 (T.dropped ());
  (* the survivors are the most recent ones, still in timestamp order *)
  let is =
    List.map
      (fun (e : T.event) ->
        match e.T.ev_args with [ ("i", T.I i) ] -> i | _ -> -1)
      (T.events ())
  in
  check_bool "newest events survive, in order" true
    (is = List.init 16 (fun k -> 25 + k))

let test_trace_json_schema () =
  T.enable ();
  T.with_span "alpha" ~args:[ ("n", T.I 3); ("why", T.S "be\"cause") ]
    (fun () -> T.instant "mark");
  T.disable ();
  let j = parse_json (T.to_json ()) in
  check_int "netcovTraceVersion" T.schema_version
    (int_of_float (as_num (field "netcovTraceVersion" j)));
  check_int "droppedEvents" 0 (int_of_float (as_num (field "droppedEvents" j)));
  let evs = as_list (field "traceEvents" j) in
  check_int "both events exported" 2 (List.length evs);
  List.iter
    (fun e ->
      (* required Chrome trace_event keys *)
      List.iter
        (fun k -> ignore (field k e))
        [ "name"; "cat"; "ph"; "pid"; "tid"; "ts"; "args" ];
      match field "ph" e with
      | J_str "X" -> ignore (as_num (field "dur" e))
      | J_str "i" -> ignore (field "s" e)
      | _ -> Alcotest.fail "phase must be X or i")
    evs;
  (* args survive the round trip, including escaping *)
  let alpha = List.hd evs in
  check_str "string arg round-trips" "be\"cause"
    (match field "why" (field "args" alpha) with
    | J_str s -> s
    | _ -> Alcotest.fail "why must be a string")

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_histogram_bucketing () =
  let reg = M.create () in
  let h = M.histogram reg ~buckets:[ 1.; 5.; 10. ] "t.hist" in
  List.iter (M.observe h) [ 0.5; 1.; 3.; 7.; 20. ];
  match M.value reg "t.hist" with
  | Some (M.Histogram snap) ->
      check_bool "bounds kept" true (snap.M.bounds = [ 1.; 5.; 10. ]);
      (* cumulative: <=1 -> 2, <=5 -> 3, <=10 -> 4, +Inf -> 5 *)
      check_bool "cumulative bucket counts" true
        (snap.M.bucket_counts = [ 2; 3; 4; 5 ]);
      check_int "count" 5 snap.M.count;
      check_bool "sum" true (abs_float (snap.M.sum -. 31.5) < 1e-9)
  | _ -> Alcotest.fail "histogram sample missing"

let test_histogram_invalid_buckets () =
  let reg = M.create () in
  Alcotest.check_raises "non-increasing bounds rejected"
    (Invalid_argument "Metrics.histogram: bounds must be finite and strictly increasing")
    (fun () -> ignore (M.histogram reg ~buckets:[ 5.; 1. ] "bad"));
  ignore (M.histogram reg ~buckets:[ 1.; 2. ] "h");
  check_bool "re-registration with different buckets rejected" true
    (try
       ignore (M.histogram reg ~buckets:[ 1.; 3. ] "h");
       false
     with Invalid_argument _ -> true)

let test_counter_parallel_exactness () =
  let reg = M.create () in
  let c = M.counter reg "t.par" in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              M.inc c 1
            done))
  in
  List.iter Domain.join domains;
  check_bool "no lost increments" true
    (M.value reg "t.par" = Some (M.Counter 40_000))

let test_merge_across_domains () =
  (* one private registry per domain, merged after the joins — the
     contention-free alternative to sharing [default] *)
  let shards =
    List.init 3 (fun i ->
        Domain.spawn (fun () ->
            let reg = M.create () in
            M.inc (M.counter reg "m.count") (10 * (i + 1));
            M.set (M.gauge reg "m.size") (float_of_int (100 * (i + 1)));
            let h = M.histogram reg ~buckets:[ 1.; 10. ] "m.hist" in
            M.observe h (float_of_int i);
            M.observe h 5.;
            reg))
    |> List.map Domain.join
  in
  let into = M.create () in
  List.iter (fun src -> M.merge_into ~into src) shards;
  check_bool "counters add" true (M.value into "m.count" = Some (M.Counter 60));
  check_bool "gauges keep the max" true
    (M.value into "m.size" = Some (M.Gauge 300.));
  (match M.value into "m.hist" with
  | Some (M.Histogram snap) ->
      check_int "histogram counts add" 6 snap.M.count;
      (* observations 0,5 / 1,5 / 2,5 -> <=1: {0,1}, <=10: all, +Inf: all *)
      check_bool "merged cumulative buckets" true
        (snap.M.bucket_counts = [ 2; 6; 6 ]);
      check_bool "sums add" true (abs_float (snap.M.sum -. 18.) < 1e-9)
  | _ -> Alcotest.fail "merged histogram missing");
  (* merging twice keeps adding — merge is plain accumulation *)
  M.merge_into ~into (List.hd shards);
  check_bool "second merge adds again" true
    (M.value into "m.count" = Some (M.Counter 70))

let test_merge_kind_mismatch () =
  let a = M.create () and b = M.create () in
  ignore (M.counter a "x");
  M.set (M.gauge b "x") 1.;
  check_bool "kind mismatch raises" true
    (try
       M.merge_into ~into:a b;
       false
     with Invalid_argument _ -> true)

let test_metrics_json_schema () =
  let reg = M.create () in
  M.inc (M.counter reg ~help:"h" ~unit_:"ops" "z.count") 7;
  M.set (M.gauge reg "a.gauge") 2.5;
  let h = M.histogram reg ~buckets:[ 0.1; 1. ] ~labels:[ ("k", "v") ] "b.h" in
  M.observe h 0.05;
  M.observe h 50.;
  let j = parse_json (M.to_json reg) in
  check_int "netcovMetricsVersion" M.schema_version
    (int_of_float (as_num (field "netcovMetricsVersion" j)));
  let ms = as_list (field "metrics" j) in
  check_int "all metrics exported" 3 (List.length ms);
  (* sorted by name: a.gauge, b.h, z.count *)
  let names =
    List.map (fun m -> match field "name" m with J_str s -> s | _ -> "?") ms
  in
  check_bool "deterministic name order" true
    (names = [ "a.gauge"; "b.h"; "z.count" ]);
  List.iter
    (fun m ->
      List.iter (fun k -> ignore (field k m)) [ "name"; "labels"; "type" ];
      match field "type" m with
      | J_str "counter" -> ignore (as_num (field "value" m))
      | J_str "gauge" -> ignore (as_num (field "value" m))
      | J_str "histogram" ->
          let buckets = as_list (field "buckets" m) in
          let counts =
            List.map (fun b -> int_of_float (as_num (field "count" b))) buckets
          in
          (* cumulative counts must be monotone, +Inf last = total count *)
          check_bool "bucket counts monotone" true
            (List.for_all2 ( <= ) counts
               (List.tl counts @ [ max_int ]));
          (match List.rev buckets with
          | last :: _ ->
              check_bool "+Inf bucket last" true (field "le" last = J_str "+Inf");
              check_int "+Inf equals count"
                (int_of_float (as_num (field "count" m)))
                (int_of_float (as_num (field "count" last)))
          | [] -> Alcotest.fail "histogram without buckets");
          ignore (as_num (field "sum" m))
      | _ -> Alcotest.fail "unknown metric type")
    ms;
  (* labels round-trip *)
  let bh = List.nth ms 1 in
  check_bool "labels exported" true (field "k" (field "labels" bh) = J_str "v")

(* ------------------------------------------------------------------ *)
(* Pipeline integration                                                *)
(* ------------------------------------------------------------------ *)

let small_state =
  lazy
    (let ft = Netcov_workloads.Fattree.generate ~k:4 () in
     Stable_state.compute (Registry.build ft.Netcov_workloads.Fattree.devices))

let test_report_identical_with_tracing () =
  let state = Lazy.force small_state in
  let tested = Netcov_dpcov.Dpcov.all_data_plane_tested state in
  (* [Json_export.coverage], not [report]: the full report embeds wall
     times which differ between any two runs, traced or not. *)
  T.disable ();
  let off =
    Json_export.coverage (Netcov.analyze state tested).Netcov.coverage
  in
  T.enable ();
  let on =
    Json_export.coverage (Netcov.analyze state tested).Netcov.coverage
  in
  T.disable ();
  check_str "coverage report byte-identical with tracing on" off on

let test_pipeline_spans_present () =
  let state = Lazy.force small_state in
  let tested = Netcov_dpcov.Dpcov.all_data_plane_tested state in
  T.enable ();
  ignore (Netcov.analyze state tested);
  T.disable ();
  List.iter
    (fun name ->
      check_bool (name ^ " span recorded") true (T.find_spans name <> []))
    [ "analyze"; "materialize"; "label"; "aggregate"; "deadcode" ];
  (* the analyze span must contain its stage spans *)
  match (T.find_spans "analyze", T.find_spans "materialize") with
  | [ a ], m :: _ ->
      check_bool "materialize nested in analyze" true
        (m.T.ev_ts_us >= a.T.ev_ts_us
        && m.T.ev_ts_us +. m.T.ev_dur_us
           <= a.T.ev_ts_us +. a.T.ev_dur_us +. 1e-6)
  | _ -> Alcotest.fail "expected one analyze span"

let test_pipeline_metrics_recorded () =
  (* built-in instrumentation lands in the default registry *)
  let before =
    match M.value M.default "analyze.runs" with
    | Some (M.Counter n) -> n
    | _ -> 0
  in
  let state = Lazy.force small_state in
  ignore (Netcov.analyze state Netcov.no_tests);
  (match M.value M.default "analyze.runs" with
  | Some (M.Counter n) -> check_int "analyze.runs incremented" (before + 1) n
  | _ -> Alcotest.fail "analyze.runs missing");
  List.iter
    (fun name ->
      check_bool (name ^ " registered") true (M.value M.default name <> None))
    [
      "sim.runs";
      "sim.rounds";
      "materialize.runs";
      "materialize.iterations";
      "label.runs";
      "label.cones";
    ]

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting and order" `Quick test_span_nesting;
          Alcotest.test_case "span survives exception" `Quick
            test_span_on_exception;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
          Alcotest.test_case "trace JSON schema" `Quick test_trace_json_schema;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram bucketing" `Quick
            test_histogram_bucketing;
          Alcotest.test_case "invalid buckets" `Quick
            test_histogram_invalid_buckets;
          Alcotest.test_case "parallel counter exactness" `Quick
            test_counter_parallel_exactness;
          Alcotest.test_case "merge across domains" `Quick
            test_merge_across_domains;
          Alcotest.test_case "merge kind mismatch" `Quick
            test_merge_kind_mismatch;
          Alcotest.test_case "metrics JSON schema" `Quick
            test_metrics_json_schema;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "report identical with tracing" `Quick
            test_report_identical_with_tracing;
          Alcotest.test_case "pipeline spans present" `Quick
            test_pipeline_spans_present;
          Alcotest.test_case "pipeline metrics recorded" `Quick
            test_pipeline_metrics_recorded;
        ] );
    ]
