(* Structured diagnostics (lib/diag): rendering, ordering, the JSON
   round-trip and the domain-safe collector. Schema in docs/ERRORS.md. *)
module Diag = Netcov_diag.Diag

let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------------- rendering ---------------- *)

let test_to_string_degradation () =
  check_str "full provenance" "r1.cfg:7: error: bad stanza"
    (Diag.to_string
       (Diag.error ~file:"r1.cfg" ~line:7 Diag.Parse_error "bad stanza"));
  check_str "no line" "r1.cfg: warning: odd"
    (Diag.to_string (Diag.warning ~file:"r1.cfg" Diag.Parse_recovered "odd"));
  check_str "device stands in for file" "r1: error: unknown device"
    (Diag.to_string (Diag.error ~device:"r1" Diag.Unknown_host "unknown device"));
  check_str "bare" "info: hello" (Diag.to_string (Diag.info Diag.Internal "hello"));
  (* a line without a file cannot render as [file:line] *)
  check_str "line without file falls back to device" "r2: error: x"
    (Diag.to_string (Diag.error ~device:"r2" ~line:9 Diag.Sim_failure "x"))

let test_severity_and_kinds () =
  check_bool "is_error" true (Diag.is_error (Diag.error Diag.Internal "x"));
  check_bool "warning is not error" false
    (Diag.is_error (Diag.warning Diag.Internal "x"));
  (match Diag.max_severity [] with
  | None -> ()
  | Some _ -> Alcotest.fail "max_severity [] should be None");
  (match
     Diag.max_severity
       [ Diag.info Diag.Internal "a"; Diag.error Diag.Internal "b";
         Diag.warning Diag.Internal "c" ]
   with
  | Some Diag.Error -> ()
  | _ -> Alcotest.fail "max_severity should pick Error");
  (* every kind's string form parses back *)
  List.iter
    (fun k ->
      match Diag.kind_of_string (Diag.kind_to_string k) with
      | Some k' when k' = k -> ()
      | _ -> Alcotest.failf "kind %s does not round-trip" (Diag.kind_to_string k))
    [ Diag.Parse_error; Diag.Parse_recovered; Diag.Duplicate_host;
      Diag.Unknown_host; Diag.Policy_eval; Diag.Sim_failure; Diag.Test_failure;
      Diag.Io_error; Diag.Internal ]

let test_compare_provenance_major () =
  let a = Diag.error ~file:"a.cfg" ~line:3 Diag.Parse_error "x" in
  let b = Diag.error ~file:"b.cfg" ~line:1 Diag.Parse_error "x" in
  check_bool "file major" true (Diag.compare a b < 0);
  let l1 = Diag.error ~file:"a.cfg" ~line:1 Diag.Parse_error "x" in
  check_bool "line within file" true (Diag.compare l1 a < 0);
  let w = Diag.warning ~file:"a.cfg" ~line:3 Diag.Parse_error "x" in
  check_bool "same location: errors sort first" true (Diag.compare a w < 0);
  check_int "equal diagnostics" 0 (Diag.compare a a)

(* ---------------- JSON ---------------- *)

let roundtrip d =
  match Diag.of_json (Diag.to_json d) with
  | Ok d' ->
      check_bool
        (Printf.sprintf "round-trip %s" (Diag.to_json d))
        true (d = d')
  | Error e -> Alcotest.failf "of_json failed on %s: %s" (Diag.to_json d) e

let test_json_roundtrip () =
  roundtrip (Diag.error ~file:"r1.cfg" ~line:12 Diag.Parse_error "plain");
  roundtrip (Diag.warning ~device:"r1" Diag.Parse_recovered "no file");
  roundtrip (Diag.info Diag.Internal "no provenance at all");
  roundtrip
    (Diag.error ~device:"r-9" ~file:"cfgs/r-9.conf" ~line:1
       ~fact:"bgp_rib(r-9, 10.0.0.0/8)" Diag.Sim_failure "every field set");
  (* messages that exercise the escaper *)
  roundtrip (Diag.error Diag.Io_error "quote \" backslash \\ done");
  roundtrip (Diag.error Diag.Io_error "newline \n tab \t return \r");
  roundtrip (Diag.error Diag.Io_error "control \x01\x1f bytes");
  roundtrip (Diag.error ~fact:"key with \"quotes\"" Diag.Test_failure "msg")

let test_json_rejects_garbage () =
  let rejects s =
    match Diag.of_json s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "of_json accepted %S" s
  in
  rejects "";
  rejects "[]";
  rejects "{}";
  rejects "{\"severity\":\"error\"}";
  rejects "{\"severity\":\"whoa\",\"kind\":\"internal\",\"message\":\"m\"}";
  rejects "{\"severity\":\"error\",\"kind\":\"nope\",\"message\":\"m\"}";
  (* trailing input is not silently dropped *)
  rejects
    "{\"severity\":\"error\",\"kind\":\"internal\",\"message\":\"m\"} trailing"

let test_list_to_json () =
  let ds =
    [ Diag.error ~file:"a.cfg" ~line:1 Diag.Parse_error "one";
      Diag.warning Diag.Parse_recovered "two" ]
  in
  let s = Diag.list_to_json ds in
  check_bool "array" true
    (String.length s >= 2 && s.[0] = '[' && s.[String.length s - 1] = ']');
  (* elements survive individually *)
  List.iter
    (fun d ->
      let sub = Diag.to_json d in
      let found =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      check_bool "element embedded" true found)
    ds

(* ---------------- collector ---------------- *)

let test_collector_order () =
  let c = Diag.collector () in
  check_int "empty" 0 (Diag.length c);
  let ds = List.init 5 (fun i -> Diag.info Diag.Internal (string_of_int i)) in
  List.iter (Diag.add c) ds;
  check_int "length" 5 (Diag.length c);
  check_bool "insertion order" true (Diag.items c = ds)

let test_collector_concurrent () =
  let c = Diag.collector () in
  let sink = Diag.sink c in
  let per_domain = 500 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              sink (Diag.info Diag.Internal (Printf.sprintf "%d-%d" d i))
            done))
  in
  List.iter Domain.join domains;
  check_int "no lost updates" (4 * per_domain) (Diag.length c)

let () =
  Alcotest.run "diag"
    [
      ( "render",
        [
          Alcotest.test_case "to_string degradation" `Quick
            test_to_string_degradation;
          Alcotest.test_case "severity and kinds" `Quick test_severity_and_kinds;
          Alcotest.test_case "compare is provenance-major" `Quick
            test_compare_provenance_major;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
          Alcotest.test_case "list encoding" `Quick test_list_to_json;
        ] );
      ( "collector",
        [
          Alcotest.test_case "insertion order" `Quick test_collector_order;
          Alcotest.test_case "concurrent adds" `Quick test_collector_concurrent;
        ] );
    ]
