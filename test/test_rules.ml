(* Unit tests for individual inference rules: exact parent sets for each
   fact kind (paper §4.2, Table 1). *)
open Netcov_types
open Netcov_config
open Netcov_sim
open Netcov_core

let check_bool = Alcotest.(check bool)
let p = Prefix.of_string
let ip = Ipv4.of_string

let state = lazy (Testnet.state_of (Testnet.chain ()))
let ctx = lazy (Rules.make_ctx (Lazy.force state))

(* Apply every rule to a fact; return the inferences. *)
let infer fact =
  List.concat_map (fun (_, rule) -> rule (Lazy.force ctx) fact) Rules.all_rules

let parent_keys (inferences : Rules.inference list) target =
  List.concat_map
    (fun (inf : Rules.inference) ->
      if Fact.equal inf.target target then
        List.concat_map
          (fun spec ->
            match (spec : Rules.parent_spec) with
            | Rules.P f -> [ Fact.key f ]
            | Rules.P_disj fs -> List.map (fun f -> "disj:" ^ Fact.key f) fs)
          inf.parents
      else [])
    inferences

let has_parent keys fragment =
  List.exists (fun k -> Astring_like.contains k fragment) keys

let main_fact host prefix =
  match Stable_state.main_lookup (Lazy.force state) host (p prefix) with
  | entry :: _ -> Fact.F_main_rib { host; entry }
  | [] -> Alcotest.failf "no main entry for %s at %s" prefix host

let test_main_rib_bgp_rule () =
  let fact = main_fact "c" "10.10.0.0/24" in
  let keys = parent_keys (infer fact) fact in
  check_bool "bgp rib parent" true (has_parent keys "bgp:c:10.10.0.0/24");
  check_bool "no config parent directly" false (has_parent keys "cfg:")

let test_main_rib_connected_rule () =
  let fact = main_fact "a" "10.10.0.0/24" in
  let keys = parent_keys (infer fact) fact in
  check_bool "connected rib parent" true (has_parent keys "conn:a:10.10.0.0/24:lan0")

let test_connected_rib_rule () =
  let fact = Fact.F_connected_rib { host = "a"; prefix = p "10.10.0.0/24"; ifname = "lan0" } in
  let keys = parent_keys (infer fact) fact in
  let reg = Stable_state.registry (Lazy.force state) in
  let iface_id =
    Option.get (Registry.find reg ~device:"a" (Element.key Element.Interface "lan0"))
  in
  check_bool "interface config parent" true
    (List.mem (Printf.sprintf "cfg:%d" iface_id) keys)

let test_bgp_learned_rule_builds_messages () =
  let state = Lazy.force state in
  let entry = List.hd (Stable_state.bgp_lookup_best state "c" (p "10.10.0.0/24")) in
  let fact =
    Fact.F_bgp_rib
      { host = "c"; route = entry.Rib.be_route; source = entry.Rib.be_source }
  in
  let inferences = infer fact in
  (* the entry's own parent is the post-import message *)
  let keys = parent_keys inferences fact in
  check_bool "post msg parent" true (has_parent keys "msg:post");
  (* the combined rule also materializes the pre-import message with its
     parents: the origin entry at b, and the edge *)
  let pre_targets =
    List.filter
      (fun (inf : Rules.inference) ->
        match inf.target with
        | Fact.F_msg { kind = Fact.Pre_import; _ } -> true
        | _ -> false)
      inferences
  in
  check_bool "pre msg inference exists" true (pre_targets <> []);
  let pre = (List.hd pre_targets).Rules.target in
  let pre_keys = parent_keys inferences pre in
  check_bool "origin at b" true (has_parent pre_keys "bgp:b:10.10.0.0/24");
  check_bool "edge parent" true (has_parent pre_keys "edge:b/192.168.0.5->c/192.168.0.6")

let test_edge_rule_single_hop () =
  let fact = Fact.F_edge "b/192.168.0.5->c/192.168.0.6" in
  let keys = parent_keys (infer fact) fact in
  let reg = Stable_state.registry (Lazy.force state) in
  let id host key = Option.get (Registry.find reg ~device:host key) in
  List.iter
    (fun eid ->
      check_bool (Printf.sprintf "cfg:%d present" eid) true
        (List.mem (Printf.sprintf "cfg:%d" eid) keys))
    [
      id "c" (Element.key Element.Bgp_peer "192.168.0.5");
      id "b" (Element.key Element.Bgp_peer "192.168.0.6");
      id "c" (Element.key Element.Interface "eth0");
      id "b" (Element.key Element.Interface "eth1");
    ];
  check_bool "no path facts for single hop" false (has_parent keys "path:")

let test_edge_rule_multihop_has_paths () =
  let state = Testnet.state_of (Testnet.diamond ()) in
  let ctx = Rules.make_ctx state in
  let edge =
    Option.get
      (Stable_state.edge_from state ~recv_host:"d" ~send_ip:(ip "172.20.0.1"))
  in
  let fact = Fact.F_edge (Session.edge_key edge) in
  let inferences = List.concat_map (fun (_, rule) -> rule ctx fact) Rules.all_rules in
  let keys = parent_keys inferences fact in
  check_bool "path parents" true (has_parent keys "path:")

let test_path_rule () =
  let state = Testnet.state_of (Testnet.diamond ()) in
  let ctx = Rules.make_ctx state in
  let dst = ip "172.20.0.4" in
  let fact = Fact.F_path { src = "a"; dst; idx = 0 } in
  let inferences = List.concat_map (fun (_, rule) -> rule ctx fact) Rules.all_rules in
  let keys = parent_keys inferences fact in
  check_bool "hop main entries" true (has_parent keys "main:a:");
  check_bool "igp protocol used" true (has_parent keys ":igp")

let test_bgp_network_rule () =
  let state = Lazy.force state in
  let entry = List.hd (Stable_state.bgp_lookup_best state "a" (p "10.10.0.0/24")) in
  let fact =
    Fact.F_bgp_rib
      { host = "a"; route = entry.Rib.be_route; source = entry.Rib.be_source }
  in
  let keys = parent_keys (infer fact) fact in
  let reg = Stable_state.registry state in
  let net_id =
    Option.get
      (Registry.find reg ~device:"a" (Element.key Element.Bgp_network "10.10.0.0/24"))
  in
  check_bool "network statement parent" true
    (List.mem (Printf.sprintf "cfg:%d" net_id) keys);
  check_bool "main rib parent" true (has_parent keys "main:a:10.10.0.0/24")

let test_redist_edge_rule () =
  (* build a device with redistribution to exercise the rule *)
  let open Testnet in
  let a =
    Device.make
      ~interfaces:
        [
          Device.interface ~address:(ip "192.168.0.1", 30) "eth0";
        ]
      ~static_routes:
        [ { Device.st_prefix = p "172.30.0.0/16"; st_next_hop = ip "192.168.0.2" } ]
      ~bgp:
        (bgp ~local_as:65001 ~router_id:"1.1.1.1"
           ~redistributes:[ { Device.rd_from = Route.Static; rd_policy = None } ]
           [ neighbor ~remote_as:65002 "192.168.0.2" ])
      "a"
  in
  let b =
    Device.make
      ~interfaces:[ Device.interface ~address:(ip "192.168.0.2", 30) "eth0" ]
      ~bgp:
        (bgp ~local_as:65002 ~router_id:"2.2.2.2"
           [ neighbor ~remote_as:65001 "192.168.0.1" ])
      "b"
  in
  let state = Testnet.state_of [ a; b ] in
  let ctx = Rules.make_ctx state in
  (* the redistributed entry exists at a *)
  let entry =
    List.find
      (fun (e : Rib.bgp_entry) -> e.be_source = Rib.From_redistribute Route.Static)
      (Stable_state.bgp_lookup state "a" (p "172.30.0.0/16"))
  in
  let fact =
    Fact.F_bgp_rib { host = "a"; route = entry.be_route; source = entry.be_source }
  in
  let inferences = List.concat_map (fun (_, rule) -> rule ctx fact) Rules.all_rules in
  let keys = parent_keys inferences fact in
  check_bool "redist edge parent" true (has_parent keys "redist-edge:a:static");
  check_bool "source main entry" true (has_parent keys "main:a:172.30.0.0/16");
  (* and the intra-device edge resolves to the redistribute config *)
  let redge = Fact.F_redist_edge { host = "a"; proto = Route.Static } in
  let rkeys =
    parent_keys (List.concat_map (fun (_, rule) -> rule ctx redge) Rules.all_rules) redge
  in
  check_bool "redistribute config" true (has_parent rkeys "cfg:")

let test_static_recursive_resolution () =
  (* Table 1's [f <- r, f]: a static route whose next hop is not on a
     connected subnet depends on the main-RIB entry that resolves it. *)
  let open Testnet in
  let devices = diamond () in
  let devices =
    List.map
      (fun (d : Device.t) ->
        if d.hostname <> "d" then d
        else
          {
            d with
            Device.static_routes =
              [
                {
                  (* next hop = a's loopback, reachable only via IGP *)
                  Device.st_prefix = p "172.31.99.0/24";
                  st_next_hop = ip "172.20.0.1";
                };
              ];
          })
      devices
  in
  let state = Testnet.state_of devices in
  let ctx = Rules.make_ctx state in
  let entry =
    List.find
      (fun (e : Rib.main_entry) -> e.me_protocol = Route.Static)
      (Stable_state.main_lookup state "d" (p "172.31.99.0/24"))
  in
  let fact = Fact.F_main_rib { host = "d"; entry } in
  let inferences = List.concat_map (fun (_, rule) -> rule ctx fact) Rules.all_rules in
  let keys = parent_keys inferences fact in
  (* parents: the static-route config element AND the resolving IGP
     main-RIB entries for the next hop (two ECMP alternatives -> disj) *)
  check_bool "config parent" true (has_parent keys "cfg:");
  check_bool "resolving entry" true (has_parent keys "main:d:172.20.0.1/32");
  check_bool "resolution is disjunctive (ECMP)" true
    (has_parent keys "disj:main:d:172.20.0.1/32")

let test_config_facts_have_no_rules () =
  let inferences = infer (Fact.F_config 0) in
  check_bool "no inferences" true (inferences = [])

let test_acl_rule () =
  let state = Lazy.force state in
  let ctx = Rules.make_ctx state in
  ignore ctx;
  (* ACL facts resolve to their definition when registered *)
  let fact = Fact.F_acl { host = "a"; acl = "NOPE"; rule = Some 0 } in
  let keys = parent_keys (infer fact) fact in
  check_bool "unknown acl yields nothing" true (keys = [])

let () =
  Alcotest.run "rules"
    [
      ( "per-rule",
        [
          Alcotest.test_case "main rib (bgp)" `Quick test_main_rib_bgp_rule;
          Alcotest.test_case "main rib (connected)" `Quick test_main_rib_connected_rule;
          Alcotest.test_case "connected rib" `Quick test_connected_rib_rule;
          Alcotest.test_case "learned bgp builds messages" `Quick
            test_bgp_learned_rule_builds_messages;
          Alcotest.test_case "edge single-hop" `Quick test_edge_rule_single_hop;
          Alcotest.test_case "edge multihop paths" `Quick test_edge_rule_multihop_has_paths;
          Alcotest.test_case "path" `Quick test_path_rule;
          Alcotest.test_case "bgp network" `Quick test_bgp_network_rule;
          Alcotest.test_case "redistribution" `Quick test_redist_edge_rule;
          Alcotest.test_case "static recursive resolution" `Quick
            test_static_recursive_resolution;
          Alcotest.test_case "config leaves" `Quick test_config_facts_have_no_rules;
          Alcotest.test_case "acl fallback" `Quick test_acl_rule;
        ] );
    ]
