(* The property-based correctness harness: engine self-tests (seeded
   reproducibility, integrated shrinking to minimal counterexamples)
   and the ten differential oracles of lib/check/oracles.ml, each
   pinned at a fixed seed with a bounded iteration budget so tier-1
   stays fast. `netcov_cli fuzz` runs the same oracles with a larger
   budget; docs/TESTING.md explains how to replay a printed seed. *)
open Netcov_check

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Engine: generation determinism                                      *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let draws seed =
    let t = Prng.make seed in
    List.init 16 (fun _ -> Prng.int t 1_000_000)
  in
  check_bool "same seed, same stream" true (draws 42 = draws 42);
  check_bool "different seeds diverge" true (draws 42 <> draws 43);
  let t = Prng.make 7 in
  let snap = Prng.copy t in
  check_int "copy replays the stream" (Prng.int t 9999) (Prng.int snap 9999)

let test_gen_deterministic () =
  let g = Gen.list_size (Gen.int_bound 10) (Gen.int_range 0 1000) in
  check_bool "same seed, same value" true
    (Gen.generate ~seed:5 g = Gen.generate ~seed:5 g);
  let d () = Gen.generate ~seed:11 Netgen.device in
  check_str "device generation is reproducible"
    (Netcov_config.Emit_junos.to_string (d ()))
    (Netcov_config.Emit_junos.to_string (d ()))

(* ------------------------------------------------------------------ *)
(* Engine: shrinking and failure reporting                             *)
(* ------------------------------------------------------------------ *)

let print_int_list l =
  "[" ^ String.concat ";" (List.map string_of_int l) ^ "]"

(* A deliberately failing property: the harness must find the minimal
   counterexample ([90] / 500) and print a reproduction seed that
   replays the same failure in a single iteration. *)
let test_shrink_int () =
  let o =
    Check.run ~name:"int >= 500" ~seed:1 ~iters:200 ~print:string_of_int
      (Gen.int_range 0 1000)
      (fun x -> if x < 500 then Ok () else Error "too big")
  in
  match o.Check.failure with
  | None -> Alcotest.fail "expected a counterexample"
  | Some f ->
      check_str "shrinks to the boundary" "500" f.Check.minimal;
      check_bool "report names the seed" true
        (let r = Check.report o in
         let needle = Printf.sprintf "seed %d" f.Check.seed in
         (* substring check *)
         let n = String.length needle and m = String.length r in
         let rec scan i = i + n <= m && (String.sub r i n = needle || scan (i + 1)) in
         scan 0)

let test_shrink_list () =
  let gen = Gen.list_size (Gen.int_bound 20) (Gen.int_range 0 100) in
  let prop l = if List.for_all (fun x -> x < 90) l then Ok () else Error "big elem" in
  let o = Check.run ~name:"all < 90" ~seed:3 ~iters:500 ~print:print_int_list gen prop in
  match o.Check.failure with
  | None -> Alcotest.fail "expected a counterexample"
  | Some f -> check_str "minimal counterexample is [90]" "[90]" f.Check.minimal

let test_seed_replays () =
  let gen = Gen.list_size (Gen.int_bound 20) (Gen.int_range 0 100) in
  let prop l = if List.for_all (fun x -> x < 90) l then Ok () else Error "big elem" in
  let o = Check.run ~name:"all < 90" ~seed:3 ~iters:500 ~print:print_int_list gen prop in
  let f = Option.get o.Check.failure in
  let o' =
    Check.run ~name:"replay" ~seed:f.Check.seed ~iters:1 ~print:print_int_list gen prop
  in
  match o'.Check.failure with
  | None -> Alcotest.fail "printed seed did not replay the failure"
  | Some f' ->
      check_int "replay fails at iteration 0" 0 f'.Check.iteration;
      check_str "replay regenerates the same value" f.Check.original f'.Check.original;
      check_str "replay shrinks to the same minimum" f.Check.minimal f'.Check.minimal

let test_passing_outcome () =
  let o =
    Check.run ~name:"tautology" ~seed:9 ~iters:50 ~print:string_of_int
      (Gen.int_bound 10)
      (fun _ -> Ok ())
  in
  check_bool "passes" true (Check.passed o);
  Check.assert_ok o

(* ------------------------------------------------------------------ *)
(* The differential oracles (bounded budgets; @fuzz runs more)         *)
(* ------------------------------------------------------------------ *)

let oracle_case name iters =
  Alcotest.test_case name `Slow (fun () ->
      match Oracles.find name with
      | None -> Alcotest.fail ("unknown oracle " ^ name)
      | Some o -> Check.assert_ok (o.Oracles.run ~seed:42 ~iters))

let test_all_oracles_listed () =
  check_int "ten oracles" 10 (List.length Oracles.all);
  List.iter
    (fun n ->
      check_bool (n ^ " registered") true (Oracles.find n <> None))
    [
      "roundtrip";
      "parallel-determinism";
      "cache-equivalence";
      "bdd-truth-table";
      "monotonicity-merge";
      "intern-reference";
      "fault-isolation";
      "incremental-scratch";
      "label-arena";
      "mutation-falsifiability";
    ]

let () =
  Alcotest.run "prop"
    [
      ( "engine",
        [
          Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "gen deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "shrink int to boundary" `Quick test_shrink_int;
          Alcotest.test_case "shrink list to singleton" `Quick test_shrink_list;
          Alcotest.test_case "failure seed replays" `Quick test_seed_replays;
          Alcotest.test_case "passing outcome" `Quick test_passing_outcome;
        ] );
      ( "oracles",
        [
          test_all_oracles_listed |> Alcotest.test_case "all ten registered" `Quick;
          oracle_case "roundtrip" 60;
          oracle_case "parallel-determinism" 20;
          oracle_case "cache-equivalence" 20;
          oracle_case "bdd-truth-table" 50;
          oracle_case "monotonicity-merge" 20;
          oracle_case "intern-reference" 20;
          oracle_case "fault-isolation" 10;
          oracle_case "incremental-scratch" 10;
          oracle_case "label-arena" 10;
          oracle_case "mutation-falsifiability" 5;
        ] );
    ]
