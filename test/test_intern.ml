(* The fact interner (lib/core/intern.ml): dense stable ids, the
   structural-identity projection (equal to Fact.key equality), the
   By_key reference mode, and domain-safety under concurrent intern. *)
open Netcov_types
open Netcov_sim
open Netcov_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let p = Prefix.of_string

let main_rib ?(metric = 0) host =
  Fact.F_main_rib
    {
      host;
      entry =
        {
          Rib.me_prefix = p "10.0.0.0/8";
          me_nexthop = Rib.Nh_discard;
          me_protocol = Route.Bgp;
          me_metric = metric;
        };
    }

let igp_rib ?(cost = 10) ?(dest_host = "b") host =
  Fact.F_igp_rib
    {
      host;
      entry =
        {
          Rib.ie_prefix = p "10.1.0.0/16";
          ie_nexthop = Ipv4.of_octets 10 1 0 1;
          ie_out_if = "ge-0/0/0";
          ie_cost = cost;
          ie_dest_host = dest_host;
          ie_dest_if = "ge-0/0/1";
        };
    }

let distinct_facts n =
  List.init n (fun i -> Fact.F_edge (Printf.sprintf "e%d" i))

(* ---------------- dense ids and stability ---------------- *)

let test_dense_stable () =
  let t = Intern.create () in
  let ids = List.map (Intern.intern t) (distinct_facts 8) in
  Alcotest.(check (list int)) "dense first-intern order" [ 0; 1; 2; 3; 4; 5; 6; 7 ] ids;
  let again = List.map (Intern.intern t) (distinct_facts 8) in
  Alcotest.(check (list int)) "re-intern returns the same ids" ids again;
  check_int "length counts distinct facts" 8 (Intern.length t)

let test_projected_fields_share_id () =
  let t = Intern.create () in
  let a = Intern.intern t (main_rib ~metric:0 "r1") in
  let b = Intern.intern t (main_rib ~metric:99 "r1") in
  check_int "main-RIB metric is outside the identity" a b;
  let c = Intern.intern t (igp_rib ~cost:10 ~dest_host:"b" "r2") in
  let d = Intern.intern t (igp_rib ~cost:77 ~dest_host:"z" "r2") in
  check_int "IGP cost and destination are outside the identity" c d;
  check_int "distinct hosts get distinct ids" 2 (Intern.length t)

(* ---------------- find and reverse lookup ---------------- *)

let test_find_roundtrip () =
  let t = Intern.create () in
  check_bool "find misses before intern" true (Intern.find t (main_rib "r1") = None);
  let id = Intern.intern t (main_rib "r1") in
  check_bool "find hits after intern" true (Intern.find t (main_rib "r1") = Some id);
  check_bool "fact inverts intern" true (Fact.equal (Intern.fact t id) (main_rib "r1"));
  Alcotest.check_raises "out-of-range id raises"
    (Invalid_argument "Intern.fact: id 1 out of [0, 1)") (fun () ->
      ignore (Intern.fact t 1))

let test_iter_snapshot () =
  let t = Intern.create () in
  let facts = distinct_facts 5 in
  List.iter (fun f -> ignore (Intern.intern t f)) facts;
  let seen = ref [] in
  Intern.iter t (fun id f -> seen := (id, Fact.key f) :: !seen);
  check_int "iter visits every fact" 5 (List.length !seen);
  List.iteri
    (fun i f ->
      check_bool "iter pairs ids with their facts" true
        (List.mem (i, Fact.key f) !seen))
    facts

(* ---------------- modes agree ---------------- *)

let test_modes_assign_same_ids () =
  let s = Intern.create ~mode:Intern.Structural () in
  let k = Intern.create ~mode:Intern.By_key () in
  let facts =
    distinct_facts 4
    @ [ main_rib ~metric:0 "r1"; main_rib ~metric:5 "r1"; igp_rib "r2" ]
  in
  List.iter
    (fun f -> check_int (Fact.key f) (Intern.intern k f) (Intern.intern s f))
    facts;
  check_int "same distinct count" (Intern.length k) (Intern.length s)

(* ---------------- concurrent intern ---------------- *)

let test_concurrent_intern () =
  let t = Intern.create () in
  let facts = Array.of_list (distinct_facts 200) in
  let worker offset () =
    (* each domain walks the same facts from a different start, so the
       first-intern races cover the whole table *)
    Array.init (Array.length facts) (fun i ->
        let f = facts.((i + offset) mod Array.length facts) in
        (Fact.key f, Intern.intern t f))
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker (50 * d))) in
  let assignments = List.concat_map (fun d -> Array.to_list (Domain.join d)) domains in
  check_int "every distinct fact got exactly one id" (Array.length facts)
    (Intern.length t);
  List.iter
    (fun (key, id) ->
      check_bool "ids are consistent across domains" true
        (String.equal (Fact.key (Intern.fact t id)) key))
    assignments;
  let ids = List.sort_uniq Int.compare (List.map snd assignments) in
  check_int "ids are dense" (Array.length facts) (List.length ids);
  check_int "ids start at zero" 0 (List.hd ids)

(* Sharded-interner invariant: readers use the lock-free reverse path
   ([fact]/[length]) while writers are still interning. A reader may
   trail behind [next], but every id below the published watermark must
   resolve, the watermark only grows, and the final table is dense. *)
let test_concurrent_reads_during_intern () =
  let t = Intern.create () in
  let n = 2000 in
  let facts = Array.of_list (distinct_facts n) in
  let stop = Atomic.make false in
  let reader () =
    let checked = ref 0 in
    let last_len = ref 0 in
    while not (Atomic.get stop) do
      let len = Intern.length t in
      if len < !last_len then failwith "published watermark went backwards";
      last_len := len;
      for id = 0 to len - 1 do
        (* must never raise / read an unwritten slot *)
        ignore (Sys.opaque_identity (Intern.fact t id));
        incr checked
      done
    done;
    !checked
  in
  let writer offset () =
    Array.iteri
      (fun i _ -> ignore (Intern.intern t facts.((i + offset) mod n)))
      facts
  in
  let readers = List.init 2 (fun _ -> Domain.spawn reader) in
  let writers = List.init 2 (fun d -> Domain.spawn (writer (d * (n / 2)))) in
  List.iter Domain.join writers;
  Atomic.set stop true;
  let reads = List.fold_left (fun acc d -> acc + Domain.join d) 0 readers in
  check_bool "readers made progress" true (reads > 0);
  check_int "dense after concurrent interning" n (Intern.length t);
  for id = 0 to n - 1 do
    ignore (Intern.fact t id)
  done;
  (* every fact still round-trips *)
  Array.iter
    (fun f ->
      match Intern.find t f with
      | Some id -> check_bool "find -> fact" true (Fact.equal (Intern.fact t id) f)
      | None -> Alcotest.fail "fact lost during concurrent interning")
    facts

let () =
  Alcotest.run "intern"
    [
      ( "interner",
        [
          Alcotest.test_case "dense stable ids" `Quick test_dense_stable;
          Alcotest.test_case "identity projection" `Quick
            test_projected_fields_share_id;
          Alcotest.test_case "find/fact roundtrip" `Quick test_find_roundtrip;
          Alcotest.test_case "iter snapshot" `Quick test_iter_snapshot;
          Alcotest.test_case "modes assign same ids" `Quick
            test_modes_assign_same_ids;
          Alcotest.test_case "concurrent intern" `Quick test_concurrent_intern;
          Alcotest.test_case "lock-free reads during intern" `Quick
            test_concurrent_reads_during_intern;
        ] );
    ]
