open Netcov_config
open Netcov_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_rng_determinism () =
  let a = Rng.make 1 and b = Rng.make 1 in
  let xs g = List.init 20 (fun _ -> Rng.int g 1000) in
  Alcotest.(check (list int)) "same stream" (xs a) (xs b);
  let c = Rng.make 2 in
  check_bool "different seed differs" true (xs (Rng.make 1) <> xs c)

let test_rng_bounds () =
  let g = Rng.make 3 in
  for _ = 1 to 1000 do
    let x = Rng.int g 7 in
    check_bool "in range" true (x >= 0 && x < 7)
  done;
  let sampled = Rng.sample g 5 [ 1; 2; 3 ] in
  check_int "sample caps" 3 (List.length sampled);
  let s10 = Rng.sample g 4 (List.init 10 Fun.id) in
  check_int "sample size" 4 (List.length s10);
  check_int "distinct" 4 (List.length (List.sort_uniq Int.compare s10))

let test_caida () =
  check_bool "customer preferred" true
    (Caida.local_pref Caida.Customer > Caida.local_pref Caida.Peer
    && Caida.local_pref Caida.Peer > Caida.local_pref Caida.Provider);
  let rels = Caida.assign (Rng.make 5) 200 in
  let count r = Array.to_list rels |> List.filter (( = ) r) |> List.length in
  check_bool "customers dominate" true (count Caida.Customer > count Caida.Provider)

let test_routeviews_feed () =
  let feed = Routeviews.generate (Rng.make 9) ~n_peers:20 ~shared:15 ~unique_per_peer:2 in
  check_int "pool size" 15 (List.length feed.Routeviews.shared_pool);
  check_int "per peer arrays" 20 (Array.length feed.Routeviews.per_peer);
  (* every shared prefix is announced by at least 2 peers *)
  List.iter
    (fun p ->
      let announcers =
        Array.to_list feed.Routeviews.per_peer
        |> List.filter (fun anns ->
               List.exists
                 (fun (a : Routeviews.announcement) ->
                   Netcov_types.Prefix.equal a.ann_prefix p)
                 anns)
        |> List.length
      in
      check_bool "2-4 announcers" true (announcers >= 2 && announcers <= 4))
    feed.Routeviews.shared_pool;
  (* every peer has a bogus (non-permitted) announcement *)
  Array.iter
    (fun anns ->
      check_bool "has bogus" true
        (List.exists
           (fun (a : Routeviews.announcement) -> not a.ann_in_allowed_list)
           anns))
    feed.Routeviews.per_peer;
  (* allowed lists exclude bogus prefixes *)
  check_bool "allowed excludes bogus" true
    (List.length (Routeviews.allowed_prefixes feed 0)
    < List.length feed.Routeviews.per_peer.(0))

let test_internet2_structure () =
  let net = Internet2.generate Internet2.test_params in
  check_int "ten routers" 10 (List.length net.routers);
  check_int "peers" Internet2.test_params.n_peers (List.length net.peers);
  check_int "devices = routers + stubs" (10 + List.length net.peers)
    (List.length net.devices);
  (* stubs are external, routers are not *)
  List.iter
    (fun (d : Device.t) ->
      let is_router = List.mem d.hostname net.routers in
      check_bool (d.hostname ^ " externality") (not is_router) d.is_external)
    net.devices;
  (* every router runs BGP with an iBGP full mesh *)
  List.iter
    (fun r ->
      let d = List.find (fun (d : Device.t) -> d.hostname = r) net.devices in
      let b = Option.get d.Device.bgp in
      let ibgp =
        List.filter
          (fun (n : Device.neighbor) -> n.nb_remote_as = net.local_as)
          b.Device.neighbors
      in
      check_int (r ^ " ibgp neighbors") 9 (List.length ibgp))
    net.routers

let test_internet2_determinism () =
  let n1 = Internet2.generate Internet2.test_params in
  let n2 = Internet2.generate Internet2.test_params in
  let text net =
    String.concat "\n"
      (List.map
         (fun (d : Device.t) -> Emit_junos.to_string d)
         net.Internet2.devices)
  in
  check_bool "same emit" true (String.equal (text n1) (text n2))

let test_internet2_simulates () =
  let net = Internet2.generate Internet2.test_params in
  let state = Netcov_sim.Stable_state.compute (Registry.build net.devices) in
  check_bool "converged" true (Netcov_sim.Stable_state.rounds state < 30);
  check_bool "has edges" true (Netcov_sim.Stable_state.edges state <> []);
  (* every peer's unique prefixes should be in its attach router's RIB *)
  let missing = ref 0 in
  List.iter
    (fun (pi : Internet2.peer_info) ->
      List.iter
        (fun p ->
          if Netcov_sim.Stable_state.main_lookup state pi.router p = [] then
            incr missing)
        pi.allowed)
    net.peers;
  (* the tainted private-ASN announcements are rejected, so a small
     number of allowed prefixes never appear *)
  check_bool "few missing (only sanity-rejected)" true (!missing <= 2)

let test_fattree_structure () =
  let ft = Fattree.generate ~k:4 () in
  check_int "router_count formula" 20 (Fattree.router_count 4);
  check_int "leaves" 8 (List.length ft.leaves);
  check_int "aggs" 8 (List.length ft.aggs);
  check_int "spines" 4 (List.length ft.spines);
  check_int "wans" 4 (List.length ft.wans);
  check_int "devices" 24 (List.length ft.devices);
  check_int "leaf subnets" 8 (List.length ft.leaf_subnets);
  Alcotest.check_raises "odd k rejected"
    (Invalid_argument "Fattree.generate: k must be even and >= 4") (fun () ->
      ignore (Fattree.generate ~k:5 ()))

let test_fattree_simulates () =
  let ft = Fattree.generate ~k:4 () in
  let state = Netcov_sim.Stable_state.compute (Registry.build ft.devices) in
  (* every leaf knows every other leaf's subnet *)
  List.iter
    (fun leaf ->
      List.iter
        (fun (_, subnet) ->
          check_bool
            (Printf.sprintf "%s knows %s" leaf
               (Netcov_types.Prefix.to_string subnet))
            true
            (Netcov_sim.Stable_state.main_lookup state leaf subnet <> []))
        ft.leaf_subnets)
    ft.leaves;
  (* spines hold the aggregate *)
  List.iter
    (fun s ->
      check_bool (s ^ " aggregate") true
        (Netcov_sim.Stable_state.bgp_lookup_best state s ft.aggregate_prefix <> []))
    ft.spines

let test_wan_structure () =
  let w = Wan.generate ~n_ases:4 ~routers_per_as:6 ~n_rr:2 () in
  check_int "devices" 24 (List.length w.Wan.devices);
  check_int "reflectors" 8 (List.length w.Wan.reflectors);
  check_int "clients" 16 (List.length w.Wan.clients);
  check_int "one LAN per router" 24 (List.length w.Wan.lans);
  (* ring of 4 ASes, no chords below 5 ASes *)
  check_int "border sessions" 4 (List.length w.Wan.borders);
  (* deterministic *)
  let w2 = Wan.generate ~n_ases:4 ~routers_per_as:6 ~n_rr:2 () in
  let text net =
    String.concat "\n"
      (List.map (fun (d : Device.t) -> Emit_junos.to_string d) net.Wan.devices)
  in
  check_bool "same emit" true (String.equal (text w) (text w2));
  Alcotest.check_raises "too few ASes rejected"
    (Invalid_argument "Wan.generate: need at least 3 ASes") (fun () ->
      ignore (Wan.generate ~n_ases:2 ()))

(* End-to-end: the WAN converges and its own suite is green — route
   reflection reaches every client, cross-AS transit forwards (this is
   the test that catches next-hop-self micro-loops), borders export. *)
let test_wan_suite_green () =
  let w = Wan.generate ~n_ases:4 ~routers_per_as:6 ~n_rr:2 () in
  let state = Netcov_sim.Stable_state.compute (Registry.build w.Wan.devices) in
  check_bool "converged" true (Netcov_sim.Stable_state.rounds state < 40);
  List.iter
    (fun ((t : Netcov_nettest.Nettest.t), (r : Netcov_nettest.Nettest.result)) ->
      check_int
        (t.Netcov_nettest.Nettest.name ^ " has no failures")
        0
        (List.length r.Netcov_nettest.Nettest.outcome.Netcov_nettest.Nettest.failures);
      check_bool
        (t.Netcov_nettest.Nettest.name ^ " ran checks")
        true
        (r.Netcov_nettest.Nettest.outcome.Netcov_nettest.Nettest.checks > 0))
    (Netcov_nettest.Nettest.run_suite state (Netcov_nettest.Wan_suite.suite w))

let test_config_text_scale () =
  let net = Internet2.generate Internet2.default_params in
  let reg = Registry.build net.devices in
  (* considered lines are a strict subset; unconsidered noise exists *)
  let total = Registry.total_lines reg and considered = Registry.considered_lines reg in
  check_bool "noise exists" true (considered < total);
  check_bool "mostly considered" true (float_of_int considered > 0.5 *. float_of_int total)

let () =
  Alcotest.run "workloads"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
        ] );
      ("caida", [ Alcotest.test_case "relationships" `Quick test_caida ]);
      ("routeviews", [ Alcotest.test_case "feed" `Quick test_routeviews_feed ]);
      ( "internet2",
        [
          Alcotest.test_case "structure" `Quick test_internet2_structure;
          Alcotest.test_case "determinism" `Quick test_internet2_determinism;
          Alcotest.test_case "simulates" `Slow test_internet2_simulates;
          Alcotest.test_case "text scale" `Slow test_config_text_scale;
        ] );
      ( "fattree",
        [
          Alcotest.test_case "structure" `Quick test_fattree_structure;
          Alcotest.test_case "simulates" `Slow test_fattree_simulates;
        ] );
      ( "wan",
        [
          Alcotest.test_case "structure" `Quick test_wan_structure;
          Alcotest.test_case "suite green" `Slow test_wan_suite_green;
        ] );
    ]
