(* Error-path coverage for the resilient pipeline (docs/ERRORS.md):
   per-stanza parser recovery, lenient registry building, the empty
   merge, per-test fault isolation in suite analysis, and the partial
   report JSON schema. *)
open Netcov_types
open Netcov_config
open Netcov_sim
open Netcov_core
module Diag = Netcov_diag.Diag
module Pool = Netcov_parallel.Pool
module Metrics = Netcov_obs.Metrics

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let contains = Astring_like.contains
let p = Prefix.of_string

(* ---------------- parser recovery ---------------- *)

let junos_bad_stanza =
  "system {\n\
  \    host-name r9;\n\
   }\n\
   interfaces {\n\
  \    eth0 {\n\
  \        unit 0 {\n\
  \            family inet {\n\
  \                address not-an-ip/33;\n\
  \            }\n\
  \        }\n\
  \    }\n\
  \    eth1 {\n\
  \        unit 0 {\n\
  \            family inet {\n\
  \                address 10.0.0.1/30;\n\
  \            }\n\
  \        }\n\
  \    }\n\
   }\n"

let elements_named reg host =
  List.map
    (fun id -> Element.name_of (Registry.element reg id))
    (Registry.elements_of_device reg host)

let test_junos_recovery () =
  (match Parse_junos.parse ~hostname:"r9" junos_bad_stanza with
  | Ok _ -> Alcotest.fail "strict parse should reject the bad address"
  | Error e -> check_int "strict error pinned to the address line" 8 e.line);
  match Parse_junos.parse_lenient ~file:"r9.cfg" ~hostname:"r9" junos_bad_stanza with
  | Error d -> Alcotest.failf "lenient parse failed: %s" (Diag.to_string d)
  | Ok (d, warns) -> (
      check_int "one recovery warning" 1 (List.length warns);
      let w = List.hd warns in
      check_bool "kind" true (w.Diag.kind = Diag.Parse_recovered);
      check_bool "warning severity" true (w.Diag.severity = Diag.Warning);
      check_bool "file provenance" true (w.Diag.file = Some "r9.cfg");
      check_int "line span of the skipped stanza"
        8
        (Option.get w.Diag.line);
      (* the element after the skipped one is still registered, with
         its own (correct) line span *)
      let reg, diags = Registry.build_lenient [ d ] in
      check_int "no registry diagnostics" 0 (List.length diags);
      check_bool "eth1 survived" true (List.mem "eth1" (elements_named reg "r9"));
      check_bool "eth0 was dropped" false
        (List.mem "eth0" (elements_named reg "r9"));
      match
        List.find_opt
          (fun id ->
            Element.name_of (Registry.element reg id) = "eth1")
          (Registry.elements_of_device reg "r9")
      with
      | None -> Alcotest.fail "eth1 element missing"
      | Some id ->
          (* element lines index the canonical rendered configuration;
             a recovered parse must still give the survivor a span *)
          check_bool "eth1 owns rendered lines" true
            ((Registry.element reg id).Element.lines <> []))

let ios_bad_line =
  "hostname r8\n\
   !\n\
   interface GigabitEthernet0/0\n\
  \ ip address 10.0.0.1 255.255.255.252\n\
   !\n\
   frobnicate all the things\n\
   !\n\
   ip prefix-list PL seq 5 permit 10.20.0.0/16\n"

let test_ios_recovery () =
  (match Parse_ios.parse ~hostname:"r8" ios_bad_line with
  | Ok _ -> Alcotest.fail "strict parse should reject the bad line"
  | Error e -> check_int "strict error pinned to the bad line" 6 e.line);
  match Parse_ios.parse_lenient ~file:"r8.cfg" ~hostname:"r8" ios_bad_line with
  | Error d -> Alcotest.failf "lenient parse failed: %s" (Diag.to_string d)
  | Ok (d, warns) -> (
      check_int "one recovery warning" 1 (List.length warns);
      let w = List.hd warns in
      check_int "warning line" 6 (Option.get w.Diag.line);
      check_bool "message names the line" true
        (contains w.Diag.message "frobnicate");
      let reg, _ = Registry.build_lenient [ d ] in
      check_bool "prefix list after the bad line survived" true
        (List.mem "PL" (elements_named reg "r8"));
      match
        List.find_opt
          (fun id -> Element.name_of (Registry.element reg id) = "PL")
          (Registry.elements_of_device reg "r8")
      with
      | None -> Alcotest.fail "PL element missing"
      | Some id ->
          check_bool "PL owns rendered lines" true
            ((Registry.element reg id).Element.lines <> []))

(* ---------------- lenient registry ---------------- *)

let test_build_lenient_duplicates () =
  let ip = Ipv4.of_string in
  let first =
    Device.make
      ~interfaces:[ Device.interface ~address:(ip "10.0.0.1", 30) "eth0" ]
      "dup"
  in
  let second = Device.make "dup" in
  let other = Device.make "other" in
  let reg, diags = Registry.build_lenient [ first; second; other ] in
  check_int "one diagnostic" 1 (List.length diags);
  let d = List.hd diags in
  check_bool "duplicate-host kind" true (d.Diag.kind = Diag.Duplicate_host);
  check_bool "error severity" true (Diag.is_error d);
  check_bool "names the device" true (d.Diag.device = Some "dup");
  (* the first definition won *)
  check_int "first dup kept" 1
    (List.length (Registry.device reg "dup").Device.interfaces);
  check_int "both hostnames present" 2
    (List.length (Registry.internal_devices reg))

(* ---------------- empty merge ---------------- *)

let test_merge_empty_with_registry () =
  let reg = Registry.build (Testnet.chain ()) in
  (match Netcov.merge_reports [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bare empty merge must still raise");
  let r = Netcov.merge_reports ~registry:reg [] in
  let stats = Coverage.line_stats r.Netcov.coverage in
  check_int "nothing covered" 0 stats.Coverage.strong_lines;
  check_bool "zero wall time" true (r.Netcov.timing.Netcov.total_s = 0.);
  let r2 = Netcov.merge_reports ~wall_s:1.5 ~registry:reg [] in
  check_bool "wall_s seeds total_s" true (r2.Netcov.timing.Netcov.total_s = 1.5);
  (* dead-code analysis still runs: it depends only on the registry *)
  check_int "dead report present" (List.length r.Netcov.dead.Deadcode.details)
    (List.length (Deadcode.analyze reg).Deadcode.details)

(* ---------------- per-test fault isolation ---------------- *)

let state = lazy (Testnet.state_of (Testnet.chain ()))

let clean_tested () =
  let facts =
    List.map
      (fun entry -> Fact.F_main_rib { host = "c"; entry })
      (Stable_state.main_lookup (Lazy.force state) "c" (p "10.10.0.0/24"))
  in
  { Netcov.dp_facts = facts; cp_elements = [] }

let poison_tested i =
  let route =
    Route.originate (p "10.99.99.0/24") ~next_hop:Ipv4.zero
  in
  {
    Netcov.dp_facts =
      [
        Fact.F_bgp_rib
          {
            host = Printf.sprintf "no-such-device-%d" i;
            route;
            source = Rib.From_redistribute Route.Static;
          };
      ];
    cp_elements = [];
  }

let counter_value name =
  match Metrics.value Metrics.default name with
  | Some (Metrics.Counter n) -> n
  | _ -> 0

let test_suite_isolation () =
  let st = Lazy.force state in
  let clean = clean_tested () in
  let alone = Netcov.analyze ~pool:Pool.sequential st clean in
  let coll = Diag.collector () in
  let errors_before = counter_value "analyze.errors" in
  let outcome =
    Netcov.analyze_suite_isolated ~pool:Pool.sequential ~diags:(Diag.sink coll)
      ~labels:[ "bad-head"; "good"; "bad-tail" ]
      st
      [ poison_tested 0; clean; poison_tested 1 ]
  in
  check_int "one survivor" 1 (List.length outcome.Netcov.ok);
  check_int "two failures" 2 (List.length outcome.Netcov.failures);
  let f0 = List.nth outcome.Netcov.failures 0 in
  let f1 = List.nth outcome.Netcov.failures 1 in
  check_int "first failure index" 0 f0.Netcov.tf_index;
  check_int "second failure index" 2 f1.Netcov.tf_index;
  check_str "labels applied" "bad-head" f0.Netcov.tf_label;
  check_str "labels applied (tail)" "bad-tail" f1.Netcov.tf_label;
  check_bool "original error preserved" true
    (contains f0.Netcov.tf_error "no-such-device-0");
  (* the survivor's coverage is byte-identical to running it alone *)
  let survivor = List.hd outcome.Netcov.ok in
  check_str "byte-identical survivor coverage"
    (Json_export.coverage alone.Netcov.coverage)
    (Json_export.coverage survivor.Netcov.coverage);
  (* failures surfaced through the metric and the diagnostic sink *)
  check_int "analyze.errors counted" (errors_before + 2)
    (counter_value "analyze.errors");
  check_int "two diagnostics" 2 (Diag.length coll);
  List.iter
    (fun d ->
      check_bool "test-failure kind" true (d.Diag.kind = Diag.Test_failure);
      check_bool "error severity" true (Diag.is_error d))
    (Diag.items coll);
  (* merging the survivors against the registry gives a valid partial
     report even when everything failed *)
  let reg = Stable_state.registry st in
  let merged = Netcov.merge_reports ~registry:reg outcome.Netcov.ok in
  check_str "merge of one survivor = survivor"
    (Json_export.coverage survivor.Netcov.coverage)
    (Json_export.coverage merged.Netcov.coverage);
  let all_failed =
    Netcov.analyze_suite_isolated ~pool:Pool.sequential st [ poison_tested 2 ]
  in
  check_int "default label" 0 (List.hd all_failed.Netcov.failures).Netcov.tf_index;
  check_str "default label text" "test-0"
    (List.hd all_failed.Netcov.failures).Netcov.tf_label;
  check_int "no survivors" 0 (List.length all_failed.Netcov.ok);
  ignore (Netcov.merge_reports ~registry:reg all_failed.Netcov.ok)

(* Differential: a suite with k injected-failing tests equals the same
   suite without them, modulo the failures section. *)
let test_suite_modulo_failures () =
  let st = Lazy.force state in
  let clean = clean_tested () in
  let empty = { Netcov.dp_facts = []; cp_elements = [] } in
  let healthy = [ clean; empty ] in
  let with_poison = [ poison_tested 0; clean; poison_tested 1; empty ] in
  let plain = Netcov.analyze_suite ~pool:Pool.sequential st healthy in
  let outcome =
    Netcov.analyze_suite_isolated ~pool:Pool.sequential st with_poison
  in
  check_int "healthy tests all survive" (List.length healthy)
    (List.length outcome.Netcov.ok);
  List.iter2
    (fun a b ->
      check_str "same coverage modulo failures"
        (Json_export.coverage a.Netcov.coverage)
        (Json_export.coverage b.Netcov.coverage))
    plain outcome.Netcov.ok

(* ---------------- partial report schema ---------------- *)

let test_report_json_sections () =
  let st = Lazy.force state in
  let r = Netcov.analyze ~pool:Pool.sequential st (clean_tested ()) in
  let clean_json = Json_export.report r in
  check_bool "diagnostics key always present" true
    (contains clean_json "\"diagnostics\":[]");
  check_bool "failures key always present" true
    (contains clean_json "\"failures\":[]");
  let diags =
    [ Diag.warning ~file:"r9.cfg" ~line:8 Diag.Parse_recovered "skipped" ]
  in
  let failures =
    [
      {
        Netcov.tf_index = 1;
        tf_label = "bad";
        tf_error = "Invalid_argument(\"boom\")";
        tf_backtrace = "";
      };
    ]
  in
  let partial_json = Json_export.report ~diags ~failures r in
  check_bool "diagnostic embedded" true
    (contains partial_json "\"kind\":\"parse.recovered\"");
  check_bool "failure embedded" true
    (contains partial_json "\"label\":\"bad\"");
  check_bool "failure index" true (contains partial_json "\"index\":1")

let () =
  Alcotest.run "errors"
    [
      ( "parser-recovery",
        [
          Alcotest.test_case "junos bad stanza" `Quick test_junos_recovery;
          Alcotest.test_case "ios bad line" `Quick test_ios_recovery;
        ] );
      ( "registry",
        [
          Alcotest.test_case "lenient duplicates" `Quick
            test_build_lenient_duplicates;
        ] );
      ( "merge",
        [
          Alcotest.test_case "empty with registry" `Quick
            test_merge_empty_with_registry;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "per-test faults excluded" `Quick
            test_suite_isolation;
          Alcotest.test_case "suite equal modulo failures" `Quick
            test_suite_modulo_failures;
        ] );
      ( "schema",
        [
          Alcotest.test_case "report sections" `Quick test_report_json_sections;
        ] );
    ]
