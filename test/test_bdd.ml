open Netcov_bdd

let check_bool = Alcotest.(check bool)

let test_terminals () =
  let m = Bdd.create () in
  check_bool "true" true (Bdd.is_true (Bdd.bdd_true m));
  check_bool "false" true (Bdd.is_false (Bdd.bdd_false m));
  check_bool "not true = false" true (Bdd.is_false (Bdd.bdd_not m (Bdd.bdd_true m)))

let test_hash_consing () =
  let m = Bdd.create () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  check_bool "same structure same node" true
    (Bdd.equal (Bdd.bdd_and m a b) (Bdd.bdd_and m b a));
  check_bool "idempotent" true (Bdd.equal (Bdd.bdd_and m a a) a);
  check_bool "double negation" true (Bdd.equal (Bdd.bdd_not m (Bdd.bdd_not m a)) a)

let test_boolean_laws () =
  let m = Bdd.create () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  let ( &&& ) = Bdd.bdd_and m and ( ||| ) = Bdd.bdd_or m in
  check_bool "distributivity" true
    (Bdd.equal (a &&& (b ||| c)) ((a &&& b) ||| (a &&& c)));
  check_bool "de morgan" true
    (Bdd.equal (Bdd.bdd_not m (a &&& b)) (Bdd.bdd_not m a ||| Bdd.bdd_not m b));
  check_bool "excluded middle" true (Bdd.is_true (a ||| Bdd.bdd_not m a));
  check_bool "contradiction" true (Bdd.is_false (a &&& Bdd.bdd_not m a))

let test_restrict () =
  let m = Bdd.create () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  let f = Bdd.bdd_and m a b in
  check_bool "f|a=1 is b" true (Bdd.equal (Bdd.restrict m f ~var:0 ~value:true) b);
  check_bool "f|a=0 is false" true (Bdd.is_false (Bdd.restrict m f ~var:0 ~value:false));
  check_bool "restrict absent var" true
    (Bdd.equal (Bdd.restrict m f ~var:7 ~value:true) f)

let test_necessity () =
  let m = Bdd.create () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  (* f = a and (b or c): a necessary, b and c are not *)
  let f = Bdd.bdd_and m a (Bdd.bdd_or m b c) in
  check_bool "a necessary" true (Bdd.is_necessary m f ~var:0);
  check_bool "b not necessary" false (Bdd.is_necessary m f ~var:1);
  check_bool "c not necessary" false (Bdd.is_necessary m f ~var:2)

let test_support () =
  let m = Bdd.create () in
  let a = Bdd.var m 3 and b = Bdd.var m 1 in
  Alcotest.(check (list int)) "sorted support" [ 1; 3 ]
    (Bdd.support m (Bdd.bdd_or m a b));
  Alcotest.(check (list int)) "terminal support" [] (Bdd.support m (Bdd.bdd_true m))

let test_any_sat () =
  let m = Bdd.create () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  check_bool "unsat" true (Bdd.any_sat m (Bdd.bdd_false m) = None);
  let f = Bdd.bdd_and m a (Bdd.bdd_not m b) in
  match Bdd.any_sat m f with
  | None -> Alcotest.fail "expected sat"
  | Some assignment ->
      let lookup v = List.assoc_opt v assignment |> Option.value ~default:false in
      check_bool "assignment satisfies" true (Bdd.eval m f lookup)

(* Property: BDD operations agree with direct boolean evaluation over
   random 4-variable formulas. *)
type formula =
  | Var of int
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Xor of formula * formula

let rec gen_formula size =
  let open QCheck.Gen in
  if size <= 1 then map (fun i -> Var i) (int_bound 3)
  else
    frequency
      [
        (1, map (fun i -> Var i) (int_bound 3));
        (2, map (fun f -> Not f) (gen_formula (size / 2)));
        (3, map2 (fun a b -> And (a, b)) (gen_formula (size / 2)) (gen_formula (size / 2)));
        (3, map2 (fun a b -> Or (a, b)) (gen_formula (size / 2)) (gen_formula (size / 2)));
        (2, map2 (fun a b -> Xor (a, b)) (gen_formula (size / 2)) (gen_formula (size / 2)));
      ]

let rec build m = function
  | Var i -> Bdd.var m i
  | Not f -> Bdd.bdd_not m (build m f)
  | And (a, b) -> Bdd.bdd_and m (build m a) (build m b)
  | Or (a, b) -> Bdd.bdd_or m (build m a) (build m b)
  | Xor (a, b) -> Bdd.bdd_xor m (build m a) (build m b)

let rec interp env = function
  | Var i -> env i
  | Not f -> not (interp env f)
  | And (a, b) -> interp env a && interp env b
  | Or (a, b) -> interp env a || interp env b
  | Xor (a, b) -> interp env a <> interp env b

let all_envs =
  List.init 16 (fun bits -> fun i -> (bits lsr i) land 1 = 1)

let prop_semantics =
  QCheck.Test.make ~name:"BDD agrees with truth table" ~count:200
    (QCheck.make (gen_formula 16))
    (fun f ->
      let m = Bdd.create () in
      let b = build m f in
      List.for_all (fun env -> Bdd.eval m b env = interp env f) all_envs)

let prop_canonical =
  QCheck.Test.make ~name:"equivalent formulas share a node" ~count:200
    (QCheck.make (QCheck.Gen.pair (gen_formula 12) (gen_formula 12)))
    (fun (f, g) ->
      let m = Bdd.create () in
      let bf = build m f and bg = build m g in
      let equivalent = List.for_all (fun env -> interp env f = interp env g) all_envs in
      Bdd.equal bf bg = equivalent)

(* ------------------------------------------------------------------ *)
(* restrict / is_necessary / any_sat edge cases                        *)
(* ------------------------------------------------------------------ *)

let test_restrict_terminals () =
  let m = Bdd.create () in
  let t = Bdd.bdd_true m and f = Bdd.bdd_false m in
  List.iter
    (fun value ->
      check_bool "restrict true is true" true
        (Bdd.equal (Bdd.restrict m t ~var:0 ~value) t);
      check_bool "restrict false is false" true
        (Bdd.equal (Bdd.restrict m f ~var:0 ~value) f))
    [ true; false ];
  (* is_necessary on terminals: nothing is necessary for a tautology,
     everything vacuously is for the unsatisfiable function. *)
  check_bool "no var necessary for true" false (Bdd.is_necessary m t ~var:0);
  check_bool "any var necessary for false" true (Bdd.is_necessary m f ~var:0);
  check_bool "tautology sat with empty assignment" true
    (Bdd.any_sat m t = Some [])

let test_restrict_uncached_var () =
  (* Restricting on a variable above [max_operand] cannot be packed
     into an apply-cache key; the implementation takes an uncached
     recompute path. Such a variable can never occur in a node (var
     creation rejects it), so the cofactor must rebuild to the very
     same hash-consed node. *)
  let m = Bdd.create () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  let f = Bdd.bdd_or m (Bdd.bdd_and m a b) (Bdd.bdd_xor m b c) in
  let huge = 1 lsl 29 (* max_operand + 1 *) in
  check_bool "uncached restrict is identity" true
    (Bdd.equal (Bdd.restrict m f ~var:huge ~value:true) f);
  check_bool "uncached restrict is identity (false)" true
    (Bdd.equal (Bdd.restrict m f ~var:huge ~value:false) f);
  check_bool "var creation rejects huge index" true
    (match Bdd.var m huge with
    | _ -> false
    | exception Invalid_argument _ -> true)

let env_with env v value i = if i = v then value else env i

let prop_restrict_vs_eval =
  QCheck.Test.make ~name:"restrict agrees with eval under the cofactor"
    ~count:200
    (QCheck.make
       (QCheck.Gen.triple (gen_formula 12) (QCheck.Gen.int_bound 3)
          QCheck.Gen.bool))
    (fun (f, v, value) ->
      let m = Bdd.create () in
      let b = build m f in
      let r = Bdd.restrict m b ~var:v ~value in
      List.for_all
        (fun env ->
          (* the cofactor must ignore env's value for v... *)
          Bdd.eval m r env = interp (env_with env v value) f
          (* ...and not mention v at all *)
          && not (List.mem v (Bdd.support m r)))
        all_envs)

let prop_any_sat_sound_complete =
  QCheck.Test.make ~name:"any_sat is sound and complete" ~count:200
    (QCheck.make (gen_formula 12))
    (fun f ->
      let m = Bdd.create () in
      let b = build m f in
      let satisfiable = List.exists (fun env -> interp env f) all_envs in
      match Bdd.any_sat m b with
      | None -> not satisfiable
      | Some assignment ->
          satisfiable
          && interp
               (fun i ->
                 List.assoc_opt i assignment |> Option.value ~default:false)
               f)

let prop_necessity_semantics =
  QCheck.Test.make ~name:"is_necessary matches semantic necessity" ~count:200
    (QCheck.make (QCheck.Gen.pair (gen_formula 12) (QCheck.Gen.int_bound 3)))
    (fun (f, v) ->
      let m = Bdd.create () in
      let b = build m f in
      (* necessity: no satisfying assignment has v = false *)
      let semantic =
        List.for_all (fun env -> env v || not (interp env f)) all_envs
      in
      Bdd.is_necessary m b ~var:v = semantic)

(* ------------------------------------------------------------------ *)
(* essential_vars: single bottom-up pass vs the restrict reference     *)
(* ------------------------------------------------------------------ *)

let test_essential_vars () =
  let m = Bdd.create () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  (* f = a and (b or c): only a is essential *)
  let f = Bdd.bdd_and m a (Bdd.bdd_or m b c) in
  Alcotest.(check (list int)) "only a essential" [ 0 ] (Bdd.essential_vars m f);
  Alcotest.(check (list int)) "conjunction: all essential" [ 0; 1; 2 ]
    (Bdd.essential_vars m (Bdd.bdd_and m (Bdd.bdd_and m a b) c));
  Alcotest.(check (list int)) "disjunction: none essential" []
    (Bdd.essential_vars m (Bdd.bdd_or m a b));
  (* terminals have empty support, so nothing is reported essential —
     the same answer the restrict loop gives when iterated over an
     empty support *)
  Alcotest.(check (list int)) "true terminal" []
    (Bdd.essential_vars m (Bdd.bdd_true m));
  Alcotest.(check (list int)) "false terminal" []
    (Bdd.essential_vars m (Bdd.bdd_false m));
  (* a tautology's support is empty even though it mentions a *)
  Alcotest.(check (list int)) "tautology" []
    (Bdd.essential_vars m (Bdd.bdd_or m a (Bdd.bdd_not m a)))

let prop_essential_vs_restrict =
  QCheck.Test.make
    ~name:"essential_vars = support filtered by is_necessary" ~count:300
    (QCheck.make (gen_formula 16))
    (fun f ->
      let m = Bdd.create () in
      let b = build m f in
      let reference =
        List.filter (fun v -> Bdd.is_necessary m b ~var:v) (Bdd.support m b)
      in
      Bdd.essential_vars m b = reference)

(* ------------------------------------------------------------------ *)
(* Arena lifecycle: trim / reset                                       *)
(* ------------------------------------------------------------------ *)

let test_trim () =
  let m = Bdd.create () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 and c = Bdd.var m 2 in
  let keep = Bdd.bdd_and m a (Bdd.bdd_or m b c) in
  (* garbage unreachable from [keep] *)
  ignore (Bdd.bdd_xor m (Bdd.bdd_xor m a b) c);
  ignore (Bdd.bdd_or m (Bdd.bdd_not m a) c);
  let before = Bdd.node_count m in
  let trims0 = Bdd.trims m in
  match Bdd.trim m [ keep ] with
  | [ keep' ] ->
      check_bool "node count shrinks" true (Bdd.node_count m < before);
      check_bool "trim counted" true (Bdd.trims m = trims0 + 1);
      List.iter
        (fun env ->
          check_bool "truth table preserved across trim" true
            (Bdd.eval m keep' env = (env 0 && (env 1 || env 2))))
        all_envs;
      (* the manager stays usable and rebuilding the same formula
         re-interns to the remapped node *)
      let a' = Bdd.var m 0 and b' = Bdd.var m 1 and c' = Bdd.var m 2 in
      check_bool "rebuild re-interns to the kept node" true
        (Bdd.equal keep' (Bdd.bdd_and m a' (Bdd.bdd_or m b' c')))
  | _ -> Alcotest.fail "trim returned the wrong number of roots"

let test_reset () =
  let m = Bdd.create () in
  let a = Bdd.var m 0 and b = Bdd.var m 1 in
  ignore (Bdd.bdd_xor m a b);
  check_bool "nodes allocated" true (Bdd.node_count m > 2);
  Bdd.reset m;
  check_bool "only terminals survive reset" true (Bdd.node_count m = 2);
  let a = Bdd.var m 0 in
  check_bool "usable after reset" true
    (Bdd.is_false (Bdd.bdd_and m a (Bdd.bdd_not m a)))

let () =
  Alcotest.run "bdd"
    [
      ( "unit",
        [
          Alcotest.test_case "terminals" `Quick test_terminals;
          Alcotest.test_case "hash consing" `Quick test_hash_consing;
          Alcotest.test_case "boolean laws" `Quick test_boolean_laws;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "necessity" `Quick test_necessity;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "any_sat" `Quick test_any_sat;
          Alcotest.test_case "restrict terminals" `Quick test_restrict_terminals;
          Alcotest.test_case "restrict uncached var" `Quick
            test_restrict_uncached_var;
          Alcotest.test_case "essential vars" `Quick test_essential_vars;
          Alcotest.test_case "trim" `Quick test_trim;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_semantics;
            prop_canonical;
            prop_necessity_semantics;
            prop_restrict_vs_eval;
            prop_any_sat_sound_complete;
            prop_essential_vs_restrict;
          ] );
    ]
