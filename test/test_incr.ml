(* Units for the incremental engine's building blocks: the backward
   closure [Ifg.reverse_reachable] (plus its duality with [reachable],
   checked exhaustively on hand-built graphs and sampled on generated
   ones), the typed-element registry diff, canonical sim-cache keys and
   host eviction, per-device coverage deltas, and an identity update
   through a full [Incr] session. The end-to-end incremental == scratch
   property lives in the [incremental-scratch] oracle (test_prop.ml). *)
open Netcov_config
open Netcov_sim
open Netcov_core
open Netcov_incr
open Netcov_check

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------- reverse_reachable on hand-built graphs ----------- *)

let f name = Fact.F_edge name

(* Build a graph from labelled edges [(parent, child); ...]; returns the
   graph and the node id of each label. *)
let graph_of edges =
  let g = Ifg.create () in
  let node l = fst (Ifg.add_fact g (f l)) in
  List.iter
    (fun (p, c) -> Ifg.add_edge g ~parent:(node p) ~child:(node c))
    edges;
  (g, node)

let set_of arr =
  let acc = ref [] in
  Array.iteri (fun i b -> if b then acc := i :: !acc) arr;
  List.sort compare !acc

(* (reachable g [x]).(y) iff (reverse_reachable g [y]).(x), all pairs. *)
let check_duality g =
  let n = Ifg.n_nodes g in
  for x = 0 to n - 1 do
    let fwd = Ifg.reachable g [ x ] in
    let rev = Ifg.reverse_reachable g [ x ] in
    for y = 0 to n - 1 do
      check_bool
        (Printf.sprintf "dual fwd %d/%d" x y)
        fwd.(y)
        (Ifg.reverse_reachable g [ y ]).(x);
      check_bool
        (Printf.sprintf "dual rev %d/%d" x y)
        rev.(y)
        (Ifg.reachable g [ y ]).(x)
    done
  done

let test_chain () =
  let g, node = graph_of [ ("a", "b"); ("b", "c"); ("c", "d") ] in
  let a, b, c, d = (node "a", node "b", node "c", node "d") in
  Alcotest.(check (list int))
    "descendants of a" (List.sort compare [ a; b; c; d ])
    (set_of (Ifg.reverse_reachable g [ a ]));
  Alcotest.(check (list int))
    "descendants of c" (List.sort compare [ c; d ])
    (set_of (Ifg.reverse_reachable g [ c ]));
  Alcotest.(check (list int))
    "ancestors of d" (List.sort compare [ a; b; c; d ])
    (set_of (Ifg.reachable g [ d ]));
  check_duality g

let test_diamond () =
  let g, node =
    graph_of [ ("a", "b"); ("a", "c"); ("b", "d"); ("c", "d") ]
  in
  let a, b, c, d = (node "a", node "b", node "c", node "d") in
  Alcotest.(check (list int))
    "a invalidates everything" (List.sort compare [ a; b; c; d ])
    (set_of (Ifg.reverse_reachable g [ a ]));
  Alcotest.(check (list int))
    "one arm only" (List.sort compare [ b; d ])
    (set_of (Ifg.reverse_reachable g [ b ]));
  Alcotest.(check (list int))
    "ancestors of b stop at a" (List.sort compare [ a; b ])
    (set_of (Ifg.reachable g [ b ]));
  check_duality g

let test_fan_in () =
  let g, node = graph_of [ ("x1", "y"); ("x2", "y"); ("x3", "y") ] in
  let x1, x2, x3, y = (node "x1", node "x2", node "x3", node "y") in
  Alcotest.(check (list int))
    "one source" (List.sort compare [ x2; y ])
    (set_of (Ifg.reverse_reachable g [ x2 ]));
  Alcotest.(check (list int))
    "multi-seed union" (List.sort compare [ x1; x3; y ])
    (set_of (Ifg.reverse_reachable g [ x1; x3 ]));
  Alcotest.(check (list int))
    "fan-in cone" (List.sort compare [ x1; x2; x3; y ])
    (set_of (Ifg.reachable g [ y ]));
  check_duality g

let test_edge_cases () =
  let g, node = graph_of [ ("a", "b") ] in
  check_int "out-of-range seeds ignored" 0
    (List.length (set_of (Ifg.reverse_reachable g [ 999; -3 ])));
  check_int "no seeds, empty closure" 0
    (List.length (set_of (Ifg.reverse_reachable g [])));
  Alcotest.(check (list int))
    "sink closes on itself" [ node "b" ]
    (set_of (Ifg.reverse_reachable g [ node "b" ]))

(* ---------------- duality on materialized Netgen graphs ------------ *)

(* Same duality property on a real IFG: generate a scenario, materialize
   its tests' cones, then spot-check forward/backward closures against
   each other on a sample grid (the full quadratic check is reserved for
   the tiny hand-built graphs above). *)
let test_netgen_duality () =
  (* hunt for a seed whose scenario materializes a non-trivial graph *)
  let rec hunt seed =
    if seed > 40 then Alcotest.fail "no non-trivial scenario in 40 seeds"
    else
      let sc = Gen.generate ~seed Netgen.scenario in
      let state =
        Stable_state.compute (Registry.build (Netgen.devices_of sc.Netgen.net))
      in
      let facts =
        List.concat_map
          (fun spec -> (Netgen.tested_of state spec).Netcov.dp_facts)
          sc.Netgen.tests
      in
      let ctx = Rules.make_ctx state in
      let g, _roots, _stats = Materialize.run ctx ~tested:facts in
      if Ifg.n_nodes g > 30 then g else hunt (seed + 1)
  in
  let g = hunt 1 in
  let n = Ifg.n_nodes g in
  let stride = max 1 (n / 24) in
  let samples = List.init (n / stride) (fun i -> i * stride) in
  let rev = List.map (fun s -> (s, Ifg.reverse_reachable g [ s ])) samples in
  for j = 0 to n - 1 do
    let fwd = Ifg.reachable g [ j ] in
    List.iter
      (fun (s, rev_s) ->
        check_bool (Printf.sprintf "dual %d/%d" j s) fwd.(s) rev_s.(j))
      rev
  done

(* ---------------- registry diff ------------------------------------ *)

let chain_devices = Testnet.chain

let map_device f target devs =
  List.map
    (fun (d : Device.t) -> if d.Device.hostname = target then f d else d)
    devs

let add_static (d : Device.t) =
  {
    d with
    Device.static_routes =
      {
        Device.st_prefix = Netcov_types.Prefix.of_string "10.200.0.0/24";
        st_next_hop = Netcov_types.Ipv4.zero;
      }
      :: d.Device.static_routes;
  }

let edit_interface (d : Device.t) =
  match d.Device.interfaces with
  | [] -> d
  | i :: rest ->
      {
        d with
        Device.interfaces = { i with Device.description = Some "edited" } :: rest;
      }

let test_diff_identity () =
  let old = Registry.build (chain_devices ()) in
  let next = Registry.build (chain_devices ()) in
  let d = Registry_diff.diff ~old next in
  check_bool "identical registries diff empty" true (Registry_diff.is_empty d);
  check_int "id_map covers old registry" (Registry.n_elements old)
    (Array.length d.Registry_diff.id_map);
  (* the id map is total and key-preserving on an identity diff *)
  Registry.iter_elements old (fun e ->
      let nid = d.Registry_diff.id_map.(e.Element.id) in
      check_bool "mapped" true (nid >= 0);
      let e' = Registry.element next nid in
      check_bool "same device" true (e.Element.device = e'.Element.device);
      check_bool "same key" true (e.Element.ekey = e'.Element.ekey))

let test_diff_added_removed () =
  let old = Registry.build (chain_devices ()) in
  let next = Registry.build (map_device add_static "b" (chain_devices ())) in
  let d = Registry_diff.diff ~old next in
  check_int "one added" 1 (List.length d.Registry_diff.added);
  check_int "nothing removed" 0 (List.length d.Registry_diff.removed);
  check_int "nothing changed" 0 (List.length d.Registry_diff.changed);
  let e = List.hd d.Registry_diff.added in
  check_bool "added on b" true (e.Registry_diff.e_device = "b");
  check_int "added has no old id" (-1) e.Registry_diff.e_old_id;
  check_bool "added has a new id" true (e.Registry_diff.e_new_id >= 0);
  check_bool "added has line provenance" true (e.Registry_diff.e_lines <> []);
  Alcotest.(check (list string))
    "only b changed" [ "b" ] d.Registry_diff.devices_changed;
  (* the reverse diff sees the same element as removed *)
  let r = Registry_diff.diff ~old:next old in
  check_int "one removed" 1 (List.length r.Registry_diff.removed);
  let e = List.hd r.Registry_diff.removed in
  check_int "removed has no new id" (-1) e.Registry_diff.e_new_id;
  check_bool "removed id unmapped" true
    (r.Registry_diff.id_map.(e.Registry_diff.e_old_id) = -1)

let test_diff_changed () =
  let old = Registry.build (chain_devices ()) in
  let next = Registry.build (map_device edit_interface "a" (chain_devices ())) in
  let d = Registry_diff.diff ~old next in
  check_int "nothing added" 0 (List.length d.Registry_diff.added);
  check_int "nothing removed" 0 (List.length d.Registry_diff.removed);
  check_int "one changed" 1 (List.length d.Registry_diff.changed);
  let e = List.hd d.Registry_diff.changed in
  check_bool "changed on a" true (e.Registry_diff.e_device = "a");
  check_bool "changed keeps both ids" true
    (e.Registry_diff.e_old_id >= 0 && e.Registry_diff.e_new_id >= 0);
  check_bool "summary names the device" true
    (let s = Registry_diff.summary d in
     String.length s > 0)

(* ---------------- canonical sim-cache keys ------------------------- *)

(* Find a generated scenario whose analysis actually exercises the
   targeted-simulation cache (a policied uplink on a probed path). *)
let policied_state () =
  let rec hunt seed =
    if seed > 80 then Alcotest.fail "no policied scenario in 80 seeds"
    else
      let sc = Gen.generate ~seed Netgen.scenario in
      if sc.Netgen.net.Netgen.policied = [] then hunt (seed + 1)
      else
        let state =
          Stable_state.compute (Registry.build (Netgen.devices_of sc.Netgen.net))
        in
        let facts =
          List.concat_map
            (fun spec -> (Netgen.tested_of state spec).Netcov.dp_facts)
            sc.Netgen.tests
        in
        let cache = Rules.create_sim_cache () in
        let ctx = Rules.make_ctx ~cache state in
        ignore (Materialize.run ctx ~tested:facts);
        if Rules.sim_cache_length cache > 0 then (sc, state, facts)
        else hunt (seed + 1)
  in
  hunt 1

let test_evict_hosts () =
  let _sc, state, facts = policied_state () in
  let cache = Rules.create_sim_cache () in
  let ctx = Rules.make_ctx ~cache state in
  ignore (Materialize.run ctx ~tested:facts);
  let l0 = Rules.sim_cache_length cache in
  check_bool "cache populated" true (l0 > 0);
  check_int "no-op predicate evicts nothing" 0
    (Rules.sim_cache_evict_hosts cache (fun _ -> false));
  check_int "length unchanged" l0 (Rules.sim_cache_length cache);
  let all = Rules.sim_cache_evict_hosts cache (fun _ -> true) in
  check_int "evict-all returns every entry" l0 all;
  check_int "cache empty after evict-all" 0 (Rules.sim_cache_length cache);
  (* evicted entries are recomputed, not resurrected: a re-run refills *)
  let ctx = Rules.make_ctx ~cache state in
  ignore (Materialize.run ctx ~tested:facts);
  check_int "refilled to the same population" l0 (Rules.sim_cache_length cache)

let test_revalidate_hosts () =
  let sc, state, facts = policied_state () in
  let cache = Rules.create_sim_cache () in
  let ctx = Rules.make_ctx ~cache state in
  ignore (Materialize.run ctx ~tested:facts);
  let l0 = Rules.sim_cache_length cache in
  check_bool "cache populated" true (l0 > 0);
  (* replaying every entry against an identical state validates all of
     them: canonical-representative replay reproduces stored results *)
  let same =
    Stable_state.compute (Registry.build (Netgen.devices_of sc.Netgen.net))
  in
  let checked, dropped =
    Rules.sim_cache_revalidate_hosts cache same (fun _ -> true)
  in
  check_int "every entry replayed" l0 checked;
  check_int "identical state drops nothing" 0 dropped;
  check_int "cache intact" l0 (Rules.sim_cache_length cache);
  (* a semantics-flipping edit (every policy term now rejects
     everything) invalidates at least the accepted evaluations *)
  let broken =
    List.map
      (fun (d : Netcov_config.Device.t) ->
        if d.Device.is_external then d
        else
          {
            d with
            Device.policies =
              List.map
                (fun (p : Policy_ast.policy) ->
                  {
                    p with
                    Policy_ast.terms =
                      List.map
                        (fun (t : Policy_ast.term) ->
                          {
                            t with
                            Policy_ast.matches = [];
                            Policy_ast.actions = [ Policy_ast.Reject ];
                          })
                        p.Policy_ast.terms;
                  })
                d.Device.policies;
          })
      (Netgen.devices_of sc.Netgen.net)
  in
  let broken_state = Stable_state.compute (Registry.build broken) in
  let _, would_drop =
    Rules.sim_cache_revalidate_hosts ~apply:false cache broken_state (fun _ ->
        true)
  in
  check_bool "dry run reports invalid entries" true (would_drop >= 1);
  check_int "dry run mutates nothing" l0 (Rules.sim_cache_length cache);
  let _, dropped =
    Rules.sim_cache_revalidate_hosts cache broken_state (fun _ -> true)
  in
  check_int "apply drops what the dry run reported" would_drop dropped;
  check_int "invalid entries removed" (l0 - dropped)
    (Rules.sim_cache_length cache)

let test_canonical_equivalent_and_no_worse () =
  let _sc, state, facts = policied_state () in
  let tested = { Netcov.dp_facts = facts; cp_elements = [] } in
  let canon = Netcov.analyze ~sim_canon:true state tested in
  let full = Netcov.analyze ~sim_canon:false state tested in
  check_bool "same coverage" true
    (Json_export.coverage canon.Netcov.coverage
    = Json_export.coverage full.Netcov.coverage);
  check_bool "canonical keys never hit less" true
    (canon.Netcov.timing.Netcov.sim_cache_hits
    >= full.Netcov.timing.Netcov.sim_cache_hits)

(* ---------------- per-device coverage deltas ----------------------- *)

let test_by_device () =
  let state = Testnet.state_of (chain_devices ()) in
  let reg = Stable_state.registry state in
  let tested =
    List.map
      (fun entry -> Fact.F_main_rib { host = "c"; entry })
      (Stable_state.main_lookup state "c"
         (Netcov_types.Prefix.of_string "10.10.0.0/24"))
  in
  let baseline = Netcov.analyze state Netcov.no_tests in
  let current =
    Netcov.analyze state { Netcov.dp_facts = tested; cp_elements = [] }
  in
  let d =
    Coverage_diff.diff ~baseline:baseline.Netcov.coverage
      current.Netcov.coverage
  in
  check_bool "coverage gained" true
    (not (Element.Id_set.is_empty d.Coverage_diff.gained));
  let per = Coverage_diff.by_device reg d in
  check_bool "grouped by device" true (per <> []);
  check_bool "devices sorted" true
    (let names = List.map fst per in
     names = List.sort String.compare names);
  (* the per-device slices partition the global sets exactly *)
  let total =
    List.fold_left
      (fun acc (dev, delta) ->
        check_bool (dev ^ " slice non-empty") true
          (not (Coverage_diff.delta_is_empty delta));
        Element.Id_set.iter
          (fun id ->
            check_bool "owner matches" true
              ((Registry.element reg id).Element.device = dev))
          delta.Coverage_diff.d_gained;
        acc + Element.Id_set.cardinal delta.Coverage_diff.d_gained)
      0 per
  in
  check_int "slices partition gained" (Element.Id_set.cardinal d.Coverage_diff.gained) total;
  check_bool "empty delta recognized" true
    (Coverage_diff.delta_is_empty
       {
         Coverage_diff.d_gained = Element.Id_set.empty;
         d_lost = Element.Id_set.empty;
         d_strengthened = Element.Id_set.empty;
         d_weakened = Element.Id_set.empty;
       })

(* ---------------- incremental session ------------------------------ *)

let chain_tested state =
  let tested =
    List.map
      (fun entry -> Fact.F_main_rib { host = "c"; entry })
      (Stable_state.main_lookup state "c"
         (Netcov_types.Prefix.of_string "10.10.0.0/24"))
  in
  { Netcov.dp_facts = tested; cp_elements = [] }

let test_identity_update () =
  let state = Testnet.state_of (chain_devices ()) in
  let session, cold = Incr.create state [ chain_tested state ] in
  check_bool "cold run labels cones" true (cold.Incr.s_relabeled > 0);
  let fp0 = Json_export.coverage (Incr.report session).Netcov.coverage in
  (* same configuration, recomputed: everything must be reused *)
  let state' = Testnet.state_of (chain_devices ()) in
  let st = Incr.update session state' [ chain_tested state' ] in
  check_int "no changed elements" 0 st.Incr.s_changed;
  check_int "no dirty cones" 0 st.Incr.s_dirty_cones;
  check_int "nothing relabeled" 0 st.Incr.s_relabeled;
  check_bool "cones reused" true (st.Incr.s_reused > 0);
  check_bool "full reuse ratio" true (st.Incr.s_reuse_ratio = 1.0);
  check_int "no sim evictions" 0 st.Incr.s_evicted_sim;
  check_bool "identity diff is empty" true
    (match Incr.last_diff session with
    | Some d -> Registry_diff.is_empty d
    | None -> false);
  check_bool "coverage unchanged" true
    (fp0 = Json_export.coverage (Incr.report session).Netcov.coverage)

let test_edit_update_matches_scratch () =
  let state = Testnet.state_of (chain_devices ()) in
  let session, _ = Incr.create state [ chain_tested state ] in
  (* live edit: a new static route on b *)
  let devs' = map_device add_static "b" (chain_devices ()) in
  let state' = Testnet.state_of devs' in
  let st = Incr.update session state' [ chain_tested state' ] in
  check_bool "edit was seen" true
    (match Incr.last_diff session with
    | Some d -> not (Registry_diff.is_empty d)
    | None -> false);
  check_bool "diff saw the added element" true (st.Incr.s_added >= 1);
  let merged =
    Netcov.merge_reports
      ~registry:(Stable_state.registry state')
      (Netcov.analyze_suite state' [ chain_tested state' ])
  in
  let scratch = Json_export.coverage merged.Netcov.coverage in
  check_bool "incremental equals scratch" true
    (Json_export.coverage (Incr.report session).Netcov.coverage = scratch)

let () =
  Alcotest.run "incr"
    [
      ( "reverse-reachable",
        [
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "diamond" `Quick test_diamond;
          Alcotest.test_case "fan-in" `Quick test_fan_in;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "netgen duality" `Quick test_netgen_duality;
        ] );
      ( "registry-diff",
        [
          Alcotest.test_case "identity" `Quick test_diff_identity;
          Alcotest.test_case "added/removed" `Quick test_diff_added_removed;
          Alcotest.test_case "changed" `Quick test_diff_changed;
        ] );
      ( "sim-cache",
        [
          Alcotest.test_case "host eviction" `Quick test_evict_hosts;
          Alcotest.test_case "replay revalidation" `Quick test_revalidate_hosts;
          Alcotest.test_case "canonical keys" `Quick
            test_canonical_equivalent_and_no_worse;
        ] );
      ( "coverage-diff",
        [ Alcotest.test_case "by device" `Quick test_by_device ] );
      ( "session",
        [
          Alcotest.test_case "identity update" `Quick test_identity_update;
          Alcotest.test_case "edit matches scratch" `Quick
            test_edit_update_matches_scratch;
        ] );
    ]
