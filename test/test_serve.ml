(* Units for the daemon's hand-rolled HTTP layer — request-line,
   header and body framing with every documented size limit — plus a
   loopback end-to-end exercise: boot [Server] on an ephemeral port,
   drive upload → suites → update → coverage over real sockets, and
   hold the daemon to the audit CLI's bytes: the [?format=coverage]
   and [?format=lcov] payloads must be byte-identical to what the
   `netcov audit` code path computes on the same configuration texts.
   The warm-session property (a second update reuses every cone and
   does no full re-analysis) is asserted twice: from the update
   response's [incr] object and from the incr.* counters in
   [/metrics]. *)
open Netcov_config
open Netcov_sim
open Netcov_core
module Diag = Netcov_diag.Diag
module Dpcov = Netcov_dpcov.Dpcov
module Http = Netcov_serve.Http
module Server = Netcov_serve.Server
module J = Json_export

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---------------- request parser ----------------------------------- *)

let parse s = Http.read_request (Http.of_string s)

let parse_ok s =
  match parse s with
  | Ok r -> r
  | Error _ -> Alcotest.fail ("request did not parse: " ^ String.escaped s)

let expect_bad name s =
  match parse s with
  | Error (Http.Bad_request _) -> ()
  | Ok _ -> Alcotest.fail (name ^ ": parsed a malformed request")
  | Error _ -> Alcotest.fail (name ^ ": wrong error kind")

let expect_too_large name ~what s =
  match parse s with
  | Error (Http.Too_large w) -> check_string (name ^ " limit") what w
  | Ok _ -> Alcotest.fail (name ^ ": parsed an oversized request")
  | Error _ -> Alcotest.fail (name ^ ": wrong error kind")

let test_parse_basic () =
  let r =
    parse_ok
      "get /v1/networks/n1/coverage?format=lcov&q=a%20b HTTP/1.1\r\n\
       Host: example\r\n\
       Content-Length: 3\r\n\
       \r\n\
       abc"
  in
  check_string "method uppercased" "GET" r.Http.meth;
  check_string "path split off query" "/v1/networks/n1/coverage" r.Http.path;
  check_string "query param" "lcov" (Option.get (Http.query_param r "format"));
  check_string "percent-decoded query" "a b"
    (Option.get (Http.query_param r "q"));
  check_string "version" "HTTP/1.1" r.Http.version;
  check_string "header names lowercased" "example"
    (Option.get (Http.header r "HOST"));
  check_string "body by content-length" "abc" r.Http.body;
  check_bool "1.1 defaults to keep-alive" true (Http.keep_alive r)

let test_parse_no_body () =
  let r = parse_ok "GET /healthz HTTP/1.1\r\n\r\n" in
  check_string "no content-length means empty body" "" r.Http.body;
  check_int "no headers" 0 (List.length r.Http.headers)

let test_keep_alive_semantics () =
  let ka v hs =
    Http.keep_alive
      { meth = "GET"; path = "/"; query = []; version = v; headers = hs;
        body = "" }
  in
  check_bool "1.1 default on" true (ka "HTTP/1.1" []);
  check_bool "1.1 close off" false (ka "HTTP/1.1" [ ("connection", "Close") ]);
  check_bool "1.0 default off" false (ka "HTTP/1.0" []);
  check_bool "1.0 keep-alive on" true
    (ka "HTTP/1.0" [ ("connection", "keep-alive") ])

let test_pipelined () =
  let r =
    Http.of_string
      "GET /healthz HTTP/1.1\r\n\r\nPOST /x HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi"
  in
  let a = Result.get_ok (Http.read_request r) in
  let b = Result.get_ok (Http.read_request r) in
  check_string "first path" "/healthz" a.Http.path;
  check_string "second path" "/x" b.Http.path;
  check_string "second body" "hi" b.Http.body;
  check_bool "then clean EOF" true (Http.read_request r = Error Http.Eof)

let test_malformed_request_line () =
  check_bool "empty input is EOF" true (parse "" = Error Http.Eof);
  expect_bad "one token" "GARBAGE\r\n\r\n";
  expect_bad "two tokens" "GET /\r\n\r\n";
  expect_bad "bad version" "GET / HTTP/2.0\r\n\r\n";
  expect_bad "relative target" "GET healthz HTTP/1.1\r\n\r\n";
  expect_bad "bare LF terminator" "GET / HTTP/1.1\n\r\n";
  expect_bad "truncated mid-line" "GET / HTT";
  expect_bad "bad percent-encoding" "GET /a%zz HTTP/1.1\r\n\r\n"

let test_malformed_headers () =
  expect_bad "header without colon" "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n";
  expect_bad "truncated headers" "GET / HTTP/1.1\r\nhost: x\r\n";
  expect_bad "chunked rejected"
    "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
  expect_bad "garbage content-length"
    "POST / HTTP/1.1\r\ncontent-length: ten\r\n\r\n";
  expect_bad "negative content-length"
    "POST / HTTP/1.1\r\ncontent-length: -4\r\n\r\n"

let test_oversized () =
  expect_too_large "request line" ~what:"request line"
    ("GET /" ^ String.make 9000 'a' ^ " HTTP/1.1\r\n\r\n");
  expect_too_large "header line" ~what:"header line"
    ("GET / HTTP/1.1\r\nx-big: " ^ String.make 9000 'b' ^ "\r\n\r\n");
  let many =
    String.concat ""
      (List.init 200 (fun i -> Printf.sprintf "x-%d: v\r\n" i))
  in
  expect_too_large "header count" ~what:"header count"
    ("GET / HTTP/1.1\r\n" ^ many ^ "\r\n");
  expect_too_large "declared body" ~what:"body"
    "POST / HTTP/1.1\r\ncontent-length: 999999999\r\n\r\n"

let test_truncated_body () =
  match parse "POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc" with
  | Error (Http.Bad_request msg) ->
      check_bool "names the body" true
        (String.length msg >= 9 && String.sub msg 0 9 = "truncated")
  | _ -> Alcotest.fail "truncated body must be a Bad_request"

let test_response_writer () =
  check_string "exact response bytes"
    "HTTP/1.1 404 Not Found\r\n\
     content-type: application/json\r\n\
     content-length: 2\r\n\
     connection: close\r\n\
     \r\n\
     {}"
    (Http.response ~status:404 ~keep_alive:false "{}");
  check_string "content type and keep-alive"
    "HTTP/1.1 200 OK\r\n\
     content-type: text/plain\r\n\
     content-length: 0\r\n\
     connection: keep-alive\r\n\
     \r\n"
    (Http.response ~content_type:"text/plain" ~status:200 ~keep_alive:true "")

(* ---------------- loopback client ---------------------------------- *)

let send_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let w = ref 0 in
  while !w < n do
    w := !w + Unix.write fd b !w (n - !w)
  done

(* The client always sends [connection: close], so reading to EOF
   yields exactly one response. *)
let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  Buffer.contents buf

let split_response raw =
  let len = String.length raw in
  let rec find i =
    if i + 3 >= len then Alcotest.fail "response has no header/body break"
    else if String.sub raw i 4 = "\r\n\r\n" then i
    else find (i + 1)
  in
  let i = find 0 in
  let head = String.sub raw 0 i in
  let body = String.sub raw (i + 4) (len - i - 4) in
  let status =
    match String.split_on_char ' ' head with
    | _ :: code :: _ -> int_of_string code
    | _ -> Alcotest.fail "bad status line"
  in
  (status, body)

let request ~port ?(meth = "GET") ?body path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let buf = Buffer.create 512 in
  Printf.bprintf buf "%s %s HTTP/1.1\r\nhost: test\r\nconnection: close\r\n"
    meth path;
  (match body with
  | Some b ->
      Printf.bprintf buf "content-length: %d\r\n\r\n" (String.length b);
      Buffer.add_string buf b
  | None -> Buffer.add_string buf "\r\n");
  send_all fd (Buffer.contents buf);
  split_response (read_all fd)

(* ---------------- JSON helpers over the responses ------------------- *)

let jparse body =
  match Json_import.parse body with
  | Ok j -> j
  | Error m -> Alcotest.fail ("response is not JSON (" ^ m ^ "): " ^ body)

let jmem j name =
  match Json_import.member name j with
  | Some v -> v
  | None -> Alcotest.fail ("response lacks field " ^ name)

let jstr j name = Option.get (Json_import.to_str (jmem j name))
let jint j name = Option.get (Json_import.to_int (jmem j name))
let jnum j name = Option.get (Json_import.to_num (jmem j name))

(* Sum of every sample of a counter in a /metrics payload (incr.*
   counters are label-free, so this is just that counter's value). *)
let metric_total mjson name =
  match Json_import.to_list (jmem mjson "metrics") with
  | None -> Alcotest.fail "/metrics: \"metrics\" is not an array"
  | Some samples ->
      List.fold_left
        (fun acc s ->
          match
            ( Option.bind (Json_import.member "name" s) Json_import.to_str,
              Option.bind (Json_import.member "value" s) Json_import.to_int )
          with
          | Some n, Some v when n = name -> acc + v
          | _ -> acc)
        0 samples

(* ---------------- fixtures ----------------------------------------- *)

(* Render fixture devices to the configuration text a client would
   upload; both the daemon and the scratch audit below re-parse it, so
   the comparison starts from identical bytes. *)
let configs_of devices =
  List.map
    (fun (d : Device.t) ->
      let lines, _ = Emit_junos.emit d in
      (d.Device.hostname ^ ".cfg", String.concat "\n" (Array.to_list lines) ^ "\n"))
    devices

let configs_json configs =
  J.J_list
    (List.map
       (fun (file, text) ->
         J.J_obj [ ("file", J.J_str file); ("text", J.J_str text) ])
       configs)

let upload_body configs =
  J.to_string
    (J.J_obj
       [
         ("name", J.J_str "chain");
         ("syntax", J.J_str "junos");
         ("configs", configs_json configs);
       ])

let update_body configs =
  J.to_string (J.J_obj [ ("configs", configs_json configs) ])

let suites_body =
  J.to_string
    (J.J_obj
       [
         ( "suites",
           J.J_list
             [
               J.J_obj
                 [
                   ("name", J.J_str "dp");
                   ( "tests",
                     J.J_list [ J.J_obj [ ("kind", J.J_str "dp-upper-bound") ] ]
                   );
                 ];
             ] );
       ])

let map_device f target devs =
  List.map
    (fun (d : Device.t) -> if d.Device.hostname = target then f d else d)
    devs

let add_static (d : Device.t) =
  {
    d with
    Device.static_routes =
      {
        Device.st_prefix = Netcov_types.Prefix.of_string "10.200.0.0/24";
        st_next_hop = Netcov_types.Ipv4.zero;
      }
      :: d.Device.static_routes;
  }

(* The `netcov audit` code path on the same uploaded texts: lenient
   parse, lenient registry, simulate, analyze the data-plane upper
   bound in isolation, merge. The daemon's [?format=coverage] and
   [?format=lcov] payloads are held byte-identical to this. *)
let audit_scratch configs =
  let coll = Diag.collector () in
  let devices =
    List.filter_map
      (fun (file, text) ->
        let hostname = Filename.remove_extension file in
        match Parse_junos.parse_lenient ~file ~hostname text with
        | Ok (d, warns) ->
            List.iter (Diag.add coll) warns;
            Some d
        | Error diag ->
            Diag.add coll diag;
            None)
      configs
  in
  let reg, reg_diags = Registry.build_lenient devices in
  List.iter (Diag.add coll) reg_diags;
  let state = Stable_state.compute ~diags:(Diag.add coll) reg in
  let all = Dpcov.all_data_plane_tested state in
  let outcome =
    Netcov.analyze_suite_isolated ~labels:[ "data-plane-upper-bound" ] state
      [ all ]
  in
  Netcov.merge_reports ~registry:reg outcome.Netcov.ok

(* ---------------- end-to-end over loopback ------------------------- *)

let test_lifecycle () =
  let srv =
    Server.create ~port:0 ~max_networks:2 ~handlers:2 ~idle_timeout_s:5. ()
  in
  let port = Server.port srv in
  let d = Domain.spawn (fun () -> Server.serve srv) in
  Fun.protect ~finally:(fun () ->
      Server.shutdown srv;
      Domain.join d)
  @@ fun () ->
  (* liveness *)
  let status, body = request ~port "/healthz" in
  check_int "healthz status" 200 status;
  check_string "healthz ok" "ok" (jstr (jparse body) "status");

  (* error envelopes: unknown network, bad method, invalid JSON *)
  let status, body = request ~port "/v1/networks/zz/coverage" in
  check_int "unknown network is 404" 404 status;
  let err = jmem (jparse body) "error" in
  check_string "error code" "unknown-network" (jstr err "code");
  check_bool "diagnostics array always present" true
    (Json_import.member "diagnostics" err <> None);
  let status, _ = request ~port ~meth:"DELETE" "/healthz" in
  check_int "bad method is 405" 405 status;
  let status, body = request ~port ~meth:"POST" ~body:"{nope" "/v1/networks" in
  check_int "invalid JSON is 400" 400 status;
  check_string "bad-json code" "bad-json" (jstr (jmem (jparse body) "error") "code");

  (* a config set that cannot parse at all: 422 with diagnostics *)
  let status, body =
    request ~port ~meth:"POST"
      ~body:(upload_body [ ("junk.cfg", "interfaces {\n") ])
      "/v1/networks"
  in
  check_int "unparseable upload is 422" 422 status;
  check_string "parse-failed code" "parse-failed"
    (jstr (jmem (jparse body) "error") "code");

  (* upload the chain fixture *)
  let configs = configs_of (Testnet.chain ()) in
  let status, body =
    request ~port ~meth:"POST" ~body:(upload_body configs) "/v1/networks"
  in
  check_int "upload created" 201 status;
  let up = jparse body in
  let id = jstr up "id" in
  check_int "three devices" 3 (jint up "devices");
  check_bool "elements counted" true (jint up "elements" > 0);
  let net path = "/v1/networks/" ^ id ^ path in

  (* register the data-plane-upper-bound suite *)
  let status, body =
    request ~port ~meth:"POST" ~body:suites_body (net "/suites")
  in
  check_int "suites registered" 200 status;
  let reg = jparse body in
  check_int "one suite" 1 (jint reg "suites");
  check_bool "coverage computed" true (jnum reg "coverage_pct" > 0.);

  (* coverage must be byte-identical to the audit path on these texts *)
  let scratch = audit_scratch configs in
  let status, body = request ~port (net "/coverage?format=coverage") in
  check_int "coverage fetched" 200 status;
  check_string "coverage bytes == audit" (J.coverage scratch.Netcov.coverage)
    body;
  let status, body = request ~port (net "/coverage?format=lcov") in
  check_int "lcov fetched" 200 status;
  check_string "lcov bytes == audit" (Lcov.report scratch.Netcov.coverage) body;
  let status, _ = request ~port (net "/coverage?format=nope") in
  check_int "unknown format is 400" 400 status;

  (* update: a new static route on b, through the warm session *)
  let configs' = configs_of (map_device add_static "b" (Testnet.chain ())) in
  let status, body =
    request ~port ~meth:"POST" ~body:(update_body configs') (net "/update")
  in
  check_int "update applied" 200 status;
  let u1 = jparse body in
  check_int "first update" 1 (jint u1 "update");
  check_bool "diff saw the added element" true
    (jint (jmem u1 "diff") "added" >= 1);
  let scratch' = audit_scratch configs' in
  let _, body = request ~port (net "/coverage?format=coverage") in
  check_string "post-update coverage == audit"
    (J.coverage scratch'.Netcov.coverage)
    body;

  (* a second, identical update on the warm session: everything must
     be reused — no dirty cones, no relabeling, no full fallback —
     visible both in the response and in the incr.* metrics *)
  let _, m0 = request ~port "/metrics" in
  let m0 = jparse m0 in
  let status, body =
    request ~port ~meth:"POST" ~body:(update_body configs') (net "/update")
  in
  check_int "warm update applied" 200 status;
  let u2 = jparse body in
  let incr = jmem u2 "incr" in
  check_int "warm: no changed elements" 0 (jint incr "changed");
  check_int "warm: no dirty cones" 0 (jint incr "dirty_cones");
  check_int "warm: nothing relabeled" 0 (jint incr "relabeled_cones");
  check_int "warm: no full fallback" 0 (jint incr "full_fallbacks");
  check_bool "warm: cones reused" true (jint incr "reused_cones" > 0);
  check_bool "warm: full reuse ratio" true (jnum incr "reuse_ratio" = 1.0);
  let _, m1 = request ~port "/metrics" in
  let m1 = jparse m1 in
  check_int "metrics: one more incremental pass"
    (metric_total m0 "incr.updates" + 1)
    (metric_total m1 "incr.updates");
  check_int "metrics: no new dirty cones"
    (metric_total m0 "incr.dirty_cones")
    (metric_total m1 "incr.dirty_cones");
  check_bool "metrics: reused cones grew" true
    (metric_total m1 "incr.reused_cones" > metric_total m0 "incr.reused_cones");
  let _, body = request ~port (net "/coverage?format=coverage") in
  check_string "warm coverage still == audit"
    (J.coverage scratch'.Netcov.coverage)
    body;

  (* listing, detail, deletion *)
  let _, body = request ~port "/v1/networks" in
  (match Json_import.to_list (jmem (jparse body) "networks") with
  | Some [ one ] -> check_string "listed id" id (jstr one "id")
  | _ -> Alcotest.fail "expected exactly one listed network");
  let status, body = request ~port (net "") in
  check_int "detail fetched" 200 status;
  check_int "detail counts updates" 2 (jint (jparse body) "updates");
  let status, _ = request ~port ~meth:"DELETE" (net "") in
  check_int "deleted" 200 status;
  let status, _ = request ~port (net "") in
  check_int "gone after delete" 404 status

(* Keep-alive over a real socket: two requests on one connection; the
   second carries [connection: close], so EOF frames the pair. *)
let test_keep_alive_connection () =
  let srv = Server.create ~port:0 ~max_networks:1 ~handlers:1 () in
  let port = Server.port srv in
  let d = Domain.spawn (fun () -> Server.serve srv) in
  Fun.protect ~finally:(fun () ->
      Server.shutdown srv;
      Domain.join d)
  @@ fun () ->
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () ->
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  send_all fd
    "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n\
     GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n";
  let raw = read_all fd in
  let count_200 =
    let n = ref 0 in
    let needle = "HTTP/1.1 200 OK" in
    for i = 0 to String.length raw - String.length needle do
      if String.sub raw i (String.length needle) = needle then incr n
    done;
    !n
  in
  check_int "two responses on one connection" 2 count_200;
  check_bool "first kept alive" true
    (let needle = "connection: keep-alive" in
     let found = ref false in
     for i = 0 to String.length raw - String.length needle do
       if String.sub raw i (String.length needle) = needle then found := true
     done;
     !found)

let () =
  Alcotest.run "serve"
    [
      ( "parser",
        [
          Alcotest.test_case "basic request" `Quick test_parse_basic;
          Alcotest.test_case "no body" `Quick test_parse_no_body;
          Alcotest.test_case "keep-alive semantics" `Quick
            test_keep_alive_semantics;
          Alcotest.test_case "pipelined requests" `Quick test_pipelined;
          Alcotest.test_case "malformed request line" `Quick
            test_malformed_request_line;
          Alcotest.test_case "malformed headers" `Quick test_malformed_headers;
          Alcotest.test_case "size limits" `Quick test_oversized;
          Alcotest.test_case "truncated body" `Quick test_truncated_body;
          Alcotest.test_case "response writer" `Quick test_response_writer;
        ] );
      ( "loopback",
        [
          Alcotest.test_case "upload/suites/update/coverage" `Quick
            test_lifecycle;
          Alcotest.test_case "keep-alive connection" `Quick
            test_keep_alive_connection;
        ] );
    ]
