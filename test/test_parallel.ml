(* Tests for the domain work pool and the parallel/memoized coverage
   pipeline: pool semantics (ordering, exceptions, nesting) and the
   determinism guarantee — reports are byte-identical at any domain
   count and with the simulation memo cache on or off. *)
open Netcov_config
open Netcov_core
open Netcov_sim
open Netcov_nettest
open Netcov_workloads
module Pool = Netcov_parallel.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Pool semantics                                                      *)
(* ------------------------------------------------------------------ *)

let test_map_order () =
  Pool.with_pool ~domains:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      check_ints "results in input order" (List.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs));
  check_ints "empty input" [] (Pool.with_pool ~domains:4 (fun p -> Pool.map p Fun.id []))

let test_sequential_equivalence () =
  let xs = List.init 37 (fun i -> i - 5) in
  let f x = (x * 7) mod 11 in
  check_ints "sequential pool = List.map" (List.map f xs)
    (Pool.map Pool.sequential f xs);
  check_int "sequential has one domain" 1 (Pool.domains Pool.sequential)

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~domains:4 (fun pool ->
      (try
         ignore
           (Pool.map pool
              (fun x -> if x = 13 then raise (Boom x) else x)
              (List.init 40 Fun.id));
         Alcotest.fail "expected Boom"
       with Boom 13 -> ());
      (* the pool survives a failed map *)
      check_ints "pool usable after failure" [ 2; 4 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2 ]))

(* Regression: a raising task must surface its own exception. The
   cancellation path used to leave un-run items' result slots empty and
   trip an [assert false] during collection, masking the real error
   with [Assert_failure]. Many raising tasks over several rounds make
   the cancelled-slot interleaving all but certain on 4 domains. *)
let test_failure_reports_original_exception () =
  Pool.with_pool ~domains:4 (fun pool ->
      for _round = 1 to 10 do
        match
          Pool.map pool
            (fun x -> if x mod 3 = 0 then raise (Boom x) else x)
            (List.init 60 Fun.id)
        with
        | _ -> Alcotest.fail "expected a Boom to propagate"
        | exception Boom i ->
            check_bool "a raising task's own exception" true (i mod 3 = 0)
        | exception e ->
            Alcotest.failf "original exception masked by %s"
              (Printexc.to_string e)
      done;
      check_ints "pool usable after repeated failures" [ 1; 2 ]
        (Pool.map pool Fun.id [ 1; 2 ]))

let test_nested_map () =
  Pool.with_pool ~domains:4 (fun pool ->
      let rows = List.init 8 (fun i -> List.init 8 (fun j -> (8 * i) + j)) in
      let summed =
        Pool.map pool
          (fun row -> List.fold_left ( + ) 0 (Pool.map pool (fun x -> x + 1) row))
          rows
      in
      check_int "nested maps on one pool" (((64 * 63) / 2) + 64)
        (List.fold_left ( + ) 0 summed))

(* Deque scheduler stress: every outer task nests its own inner map
   while all domains are saturated, so inner items land on busy
   domains' own deques and finish via owner pops and steals in some
   interleaving. Results must still come back complete and in order. *)
let test_nested_map_under_contention () =
  Pool.with_pool ~domains:4 (fun pool ->
      for _round = 1 to 5 do
        let expected = ref [] in
        let rows =
          List.init 32 (fun i -> List.init (1 + (i mod 7)) (fun j -> i + j))
        in
        List.iter
          (fun row ->
            expected := List.fold_left ( + ) 0 (List.map (fun x -> x * x) row)
                        :: !expected)
          rows;
        let got =
          Pool.map pool
            (fun row ->
              (* a little real work, then a nested fan-out *)
              let spin = ref 0 in
              for i = 1 to 1000 do spin := !spin + i done;
              ignore (Sys.opaque_identity !spin);
              List.fold_left ( + ) 0 (Pool.map pool (fun x -> x * x) row))
            rows
        in
        check_ints "contended nested maps complete in order"
          (List.rev !expected) got
      done)

(* The steal path must never change results: the same map on 1, 2 and
   4 domains, repeated, is byte-identical (work stealing only reorders
   execution, never placement of results). *)
let test_steal_determinism () =
  let xs = List.init 500 (fun i -> i * 13 mod 271) in
  let f x = (x * x * 7) mod 1009 in
  let reference = List.map f xs in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          for run = 1 to 3 do
            check_ints
              (Printf.sprintf "domains=%d run %d matches List.map" domains run)
              reference
              (Pool.map pool f xs)
          done))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Submit: failure routing and teardown draining                       *)
(* ------------------------------------------------------------------ *)

let failed_count () =
  match Netcov_obs.Metrics.value Netcov_obs.Metrics.default "pool.tasks.failed" with
  | Some (Netcov_obs.Metrics.Counter n) -> n
  | _ -> 0

let await ?(timeout_s = 5.) cond =
  let t0 = Unix.gettimeofday () in
  while (not (cond ())) && Unix.gettimeofday () -. t0 < timeout_s do
    Domain.cpu_relax ()
  done;
  cond ()

(* A submit task that raises must not vanish: the failure lands in
   pool.tasks.failed and in the installed handler as an [Internal]
   diagnostic, on parallel and sequential pools alike. *)
let test_submit_failure_routing () =
  let check_on pool =
    let seen = Atomic.make [] in
    Pool.set_failure_handler pool (fun d ->
        let rec push () =
          let cur = Atomic.get seen in
          if not (Atomic.compare_and_set seen cur (d :: cur)) then push ()
        in
        push ());
    let before = failed_count () in
    Pool.submit pool (fun () -> raise (Boom 7));
    Pool.submit pool (fun () -> failwith "second failure");
    check_bool "both failures counted" true
      (await (fun () -> failed_count () - before >= 2));
    check_bool "handler saw both diagnostics" true
      (await (fun () -> List.length (Atomic.get seen) >= 2));
    let contains ~needle hay =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      nn = 0 || go 0
    in
    List.iter
      (fun d ->
        let s = Netcov_core.Diag.to_string d in
        check_bool "diagnostic mentions the submit task" true
          (contains ~needle:"Pool.submit task raised" s))
      (Atomic.get seen)
  in
  let pool = Pool.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Pool.teardown pool) (fun () -> check_on pool);
  check_on Pool.sequential

(* Teardown's contract: tasks already submitted run to completion, even
   when they are still queued (or sleeping) when teardown starts. *)
let test_teardown_drains_in_flight_submits () =
  let ran = Atomic.make 0 in
  let pool = Pool.create ~domains:2 () in
  for _i = 1 to 20 do
    Pool.submit pool (fun () ->
        Unix.sleepf 0.005;
        Atomic.incr ran)
  done;
  Pool.teardown pool;
  check_int "every queued submit ran before teardown returned" 20
    (Atomic.get ran);
  (* teardown is idempotent *)
  Pool.teardown pool

(* ------------------------------------------------------------------ *)
(* Determinism of the coverage pipeline                                *)
(* ------------------------------------------------------------------ *)

let report_fingerprint (r : Netcov.report) =
  Json_export.coverage r.Netcov.coverage

let ft_state_and_testeds =
  lazy
    (let ft = Fattree.generate ~k:4 () in
     let state = Stable_state.compute (Registry.build ft.Fattree.devices) in
     let testeds =
       List.map
         (fun (t : Nettest.t) -> (t.Nettest.run state).Nettest.tested)
         (Datacenter.suite ft)
     in
     (state, testeds))

let test_suite_domain_determinism () =
  let state, testeds = Lazy.force ft_state_and_testeds in
  let at domains =
    Pool.with_pool ~domains (fun pool ->
        Netcov.analyze_suite ~pool state testeds)
  in
  let seq = at 1 and par = at 4 in
  check_int "one report per test" (List.length testeds) (List.length par);
  List.iteri
    (fun i (a, b) ->
      check_str
        (Printf.sprintf "per-test report %d identical" i)
        (report_fingerprint a) (report_fingerprint b))
    (List.combine seq par);
  check_str "merged suite report identical"
    (report_fingerprint (Netcov.merge_reports seq))
    (report_fingerprint (Netcov.merge_reports par))

let test_merge_equals_union_analysis () =
  let state, testeds = Lazy.force ft_state_and_testeds in
  let merged =
    Netcov.merge_reports (Netcov.analyze_suite ~pool:Pool.sequential state testeds)
  in
  let union =
    Netcov.analyze state
      (List.fold_left Netcov.merge_tested Netcov.no_tests testeds)
  in
  check_str "merged per-test = union analysis" (report_fingerprint union)
    (report_fingerprint merged)

let i2_state_and_testeds =
  lazy
    (let net = Internet2.generate Internet2.paper_params in
     let state = Stable_state.compute (Registry.build net.Internet2.devices) in
     let testeds =
       List.map
         (fun (t : Nettest.t) -> (t.Nettest.run state).Nettest.tested)
         (Iterations.improved_suite net)
     in
     (state, testeds))

let test_i2_domain_determinism () =
  let state, testeds = Lazy.force i2_state_and_testeds in
  let at domains =
    Pool.with_pool ~domains (fun pool ->
        Netcov.merge_reports (Netcov.analyze_suite ~pool state testeds))
  in
  check_str "internet2 merged report identical 1 vs 4 domains"
    (report_fingerprint (at 1))
    (report_fingerprint (at 4))

let test_sim_cache_transparent () =
  let state, testeds = Lazy.force i2_state_and_testeds in
  let run sim_cache =
    Netcov.merge_reports
      (Netcov.analyze_suite ~pool:Pool.sequential ~sim_cache state testeds)
  in
  let on = run true and off = run false in
  check_str "cache on = cache off" (report_fingerprint off) (report_fingerprint on);
  let tm = on.Netcov.timing in
  check_bool "cache sees hits" true (tm.Netcov.sim_cache_hits > 0);
  check_int "cache off has no traffic" 0
    (off.Netcov.timing.Netcov.sim_cache_hits
    + off.Netcov.timing.Netcov.sim_cache_misses)

(* ------------------------------------------------------------------ *)
(* Merged timing semantics and registry validation                     *)
(* ------------------------------------------------------------------ *)

let test_merge_timing_semantics () =
  let state, testeds = Lazy.force ft_state_and_testeds in
  let reports = Netcov.analyze_suite ~pool:Pool.sequential state testeds in
  let per_test_total = List.map (fun r -> r.Netcov.timing.Netcov.total_s) reports in
  let merged = Netcov.merge_reports reports in
  let tm = merged.Netcov.timing in
  check_bool "cpu_total_s sums the per-test wall times" true
    (Float.abs (tm.Netcov.cpu_total_s -. List.fold_left ( +. ) 0. per_test_total)
    < 1e-9);
  check_bool "default total_s is the max, not the sum" true
    (tm.Netcov.total_s = List.fold_left Float.max 0. per_test_total);
  let timed = Netcov.merge_reports ~wall_s:12.5 reports in
  check_bool "wall_s overrides merged total_s" true
    (timed.Netcov.timing.Netcov.total_s = 12.5);
  check_bool "wall_s leaves cpu_total_s alone" true
    (timed.Netcov.timing.Netcov.cpu_total_s = tm.Netcov.cpu_total_s)

let test_merge_rejects_foreign_registry () =
  let state, testeds = Lazy.force ft_state_and_testeds in
  let r = Netcov.analyze state (List.hd testeds) in
  let other_state = Stable_state.compute (Registry.build (Testnet.chain ())) in
  let other = Netcov.analyze other_state Netcov.no_tests in
  check_bool "merging across registries raises" true
    (match Netcov.merge_reports [ r; other ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "empty list raises" true
    (match Netcov.merge_reports [] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* NETCOV_DOMAINS parsing                                              *)
(* ------------------------------------------------------------------ *)

let test_env_domains () =
  (* Unix.putenv cannot unset, so probe the fallback with a value that
     is valid-but-ignored afterwards. *)
  Unix.putenv "NETCOV_DOMAINS" "3";
  check_int "valid value is honoured" 3 (Pool.default_domains ());
  (* no cap: the default is whatever the hardware recommends *)
  let fallback = max 1 (Domain.recommended_domain_count ()) in
  List.iter
    (fun bad ->
      Unix.putenv "NETCOV_DOMAINS" bad;
      check_int
        (Printf.sprintf "invalid %S falls back to the default" bad)
        fallback (Pool.default_domains ()))
    [ "abc"; "0"; "-2"; "" ];
  Unix.putenv "NETCOV_DOMAINS" "1"

(* ------------------------------------------------------------------ *)
(* BDD apply-cache counters                                            *)
(* ------------------------------------------------------------------ *)

let test_bdd_cache_stats () =
  let open Netcov_bdd in
  let m = Bdd.create ~cache_size:1024 () in
  let st0 = Bdd.cache_stats m in
  check_int "slots rounded to pow2" 1024 st0.Bdd.slots;
  check_int "fresh cache: no hits" 0 st0.Bdd.hits;
  let vars = List.init 16 (Bdd.var m) in
  let a = Bdd.conj m vars in
  let st1 = Bdd.cache_stats m in
  check_bool "building records misses" true (st1.Bdd.misses > 0);
  let b = Bdd.conj m vars in
  let st2 = Bdd.cache_stats m in
  check_bool "rebuild hits the cache" true (st2.Bdd.hits > st1.Bdd.hits);
  check_bool "identical result" true (Bdd.equal a b)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map order" `Quick test_map_order;
          Alcotest.test_case "sequential equivalence" `Quick
            test_sequential_equivalence;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "failure reports original exception" `Quick
            test_failure_reports_original_exception;
          Alcotest.test_case "nested map" `Quick test_nested_map;
          Alcotest.test_case "nested map under contention" `Quick
            test_nested_map_under_contention;
          Alcotest.test_case "steal-path determinism" `Quick
            test_steal_determinism;
        ] );
      ( "submit",
        [
          Alcotest.test_case "failure routing" `Quick
            test_submit_failure_routing;
          Alcotest.test_case "teardown drains in-flight submits" `Quick
            test_teardown_drains_in_flight_submits;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "suite 1 vs 4 domains" `Quick
            test_suite_domain_determinism;
          Alcotest.test_case "internet2 1 vs 4 domains" `Quick
            test_i2_domain_determinism;
          Alcotest.test_case "merge = union analysis" `Quick
            test_merge_equals_union_analysis;
          Alcotest.test_case "sim cache transparent" `Quick
            test_sim_cache_transparent;
        ] );
      ( "merge",
        [
          Alcotest.test_case "timing: cpu sums, wall does not" `Quick
            test_merge_timing_semantics;
          Alcotest.test_case "foreign registry rejected" `Quick
            test_merge_rejects_foreign_registry;
        ] );
      ( "env",
        [ Alcotest.test_case "NETCOV_DOMAINS parsing" `Quick test_env_domains ] );
      ( "bdd-cache",
        [ Alcotest.test_case "stats counters" `Quick test_bdd_cache_stats ] );
    ]
