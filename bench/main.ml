(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (sections 6-8). Run with no argument for everything, or pass
   one of: fig6b fig7 fig8 fig9 fig10a fig10b fig11a fig11b table2
   ablation mutation whatif rr scaling label intern incr kernels.

   Flags: --smoke shrinks workloads to a seconds-scale budget (CI),
   --oversubscribe re-enables scaling rows with more domains than
   hardware cores, --trace FILE / --metrics FILE export observability.

   Absolute numbers differ from the paper (synthetic workload, different
   machine); the printed "paper" annotations give the reference values so
   the qualitative shape can be compared directly. *)

open Netcov_config
open Netcov_sim
open Netcov_core
open Netcov_nettest
open Netcov_workloads
module Pool = Netcov_parallel.Pool
module Registry_diff = Netcov_incr.Registry_diff

let section title = Printf.printf "\n=== %s ===\n%!" title
let timed = Timing.time
let pct = Printf.sprintf "%.1f%%"
let smoke = ref false
let oversubscribe = ref false

(* ------------------------------------------------------------------ *)
(* Shared environments                                                 *)
(* ------------------------------------------------------------------ *)

type tested_test = {
  test : Nettest.t;
  result : Nettest.result;
  exec_s : float;
  report : Netcov.report;
}

let run_tests state tests =
  (* Fan the per-test execute+analyze pipelines out across a domain
     pool; tests share only the immutable stable state, and results
     come back in input order. *)
  Pool.with_pool (fun pool ->
      Pool.map pool
        (fun (t : Nettest.t) ->
          let result, exec_s = timed (fun () -> t.run state) in
          let report = Netcov.analyze ~pool state result.Nettest.tested in
          { test = t; result; exec_s; report })
        tests)

type i2_env = {
  net : Internet2.t;
  state : Stable_state.t;
  tests : tested_test list;
  sim_s : float;
}

let i2_env =
  lazy
    (let net = Internet2.generate Internet2.paper_params in
     let reg = Registry.build net.Internet2.devices in
     let state, sim_s = timed (fun () -> Stable_state.compute reg) in
     let tests = run_tests state (Iterations.improved_suite net) in
     { net; state; tests; sim_s })

type ft_env = {
  ft : Fattree.t;
  ft_state : Stable_state.t;
  ft_tests : tested_test list;
  ft_sim_s : float;
}

let make_ft_env k =
  let ft = Fattree.generate ~k () in
  let reg = Registry.build ft.Fattree.devices in
  let ft_state, ft_sim_s = timed (fun () -> Stable_state.compute reg) in
  let ft_tests = run_tests ft_state (Datacenter.suite ft) in
  { ft; ft_state; ft_tests; ft_sim_s }

let ft_env = lazy (make_ft_env 8)

let suite_report state tests =
  let tested =
    List.fold_left
      (fun acc t -> Netcov.merge_tested acc t.result.Nettest.tested)
      Netcov.no_tests tests
  in
  Netcov.analyze state tested

let coverage_pct report = Coverage.pct (Coverage.line_stats report.Netcov.coverage)
let bagpipe_of env = List.filteri (fun i _ -> i < 3) env.tests

(* ------------------------------------------------------------------ *)
(* Figure 6(b): file-level aggregate coverage                          *)
(* ------------------------------------------------------------------ *)

let fig6b () =
  section "Figure 6(b): Internet2 file-level coverage (Bagpipe suite)";
  let env = Lazy.force i2_env in
  let report = suite_report env.state (bagpipe_of env) in
  print_string (Lcov.file_table report.Netcov.coverage);
  Printf.printf "(paper: overall 26.1%%, per-device range 11.8%%..40.5%%)\n"

(* ------------------------------------------------------------------ *)
(* Figure 7 + section 6.1.1: coverage by configuration type per test   *)
(* ------------------------------------------------------------------ *)

let bucket_row cov =
  List.map
    (fun (b, (s : Coverage.type_stats)) ->
      let covered = s.lines_strong + s.lines_weak in
      ( Element.bucket_to_string b,
        if s.lines_total = 0 then 0.
        else 100. *. float_of_int covered /. float_of_int s.lines_total ))
    (Coverage.bucket_stats cov)

let print_bucket_header () =
  Printf.printf "%-24s %8s | %-10s %-10s %-10s %-10s\n" "test" "total"
    "Interface" "BGP" "Policy" "MatchList"

let print_bucket_row name total cov =
  let find b = try List.assoc b (bucket_row cov) with Not_found -> 0. in
  Printf.printf "%-24s %8s | %-10s %-10s %-10s %-10s\n" name (pct total)
    (pct (find "Interfaces"))
    (pct (find "BGP"))
    (pct (find "Routing policies"))
    (pct (find "Match lists"))

let fig7 () =
  section "Figure 7: Internet2 coverage by test and configuration type";
  let env = Lazy.force i2_env in
  print_bucket_header ();
  List.iter
    (fun t ->
      print_bucket_row t.test.Nettest.name (coverage_pct t.report)
        t.report.Netcov.coverage)
    (bagpipe_of env);
  let suite = suite_report env.state (bagpipe_of env) in
  print_bucket_row "Test Suite" (coverage_pct suite) suite.Netcov.coverage;
  let stats = Coverage.line_stats suite.Netcov.coverage in
  Printf.printf
    "suite: %d/%d considered lines covered; weak share %.1f%%; dead code %.1f%%\n"
    (Coverage.covered_lines stats) stats.Coverage.considered
    (100.
    *. float_of_int stats.Coverage.weak_lines
    /. float_of_int (max 1 stats.Coverage.considered))
    (Netcov.dead_line_pct suite);
  Printf.printf
    "(paper: BlockToExternal 0.6%%, NoMartian 0.9%%, RoutePreference 24.7%%, \
     suite 26.1%%, weak 0.5%%, dead 27.9%%)\n"

(* ------------------------------------------------------------------ *)
(* Figure 8: coverage growth over test-development iterations          *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  section "Figure 8: Internet2 coverage across test iterations";
  let env = Lazy.force i2_env in
  let paper = [ 26.1; 26.7; 33.0; 43.0 ] in
  let stages =
    [
      ("Bagpipe suite", 3);
      ("+ SanityIn", 4);
      ("+ PeerSpecificRoute", 5);
      ("+ InterfaceReachability", 6);
    ]
  in
  Printf.printf "%-26s %10s %10s\n" "suite" "measured" "paper";
  List.iteri
    (fun i (name, n) ->
      let tests = List.filteri (fun j _ -> j < n) env.tests in
      let report = suite_report env.state tests in
      Printf.printf "%-26s %10s %10s\n" name
        (pct (coverage_pct report))
        (pct (List.nth paper i)))
    stages

(* ------------------------------------------------------------------ *)
(* Figure 9: datacenter coverage with strong/weak split                *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  section "Figure 9: fat-tree (k=8, 80 routers) coverage by test";
  let env = Lazy.force ft_env in
  Printf.printf "%-20s %10s %10s %10s\n" "test" "covered" "strong" "weak";
  let row name cov =
    let s = Coverage.line_stats cov in
    let f n = 100. *. float_of_int n /. float_of_int (max 1 s.Coverage.considered) in
    Printf.printf "%-20s %10s %10s %10s\n" name
      (pct (Coverage.pct s))
      (pct (f s.Coverage.strong_lines))
      (pct (f s.Coverage.weak_lines))
  in
  List.iter (fun t -> row t.test.Nettest.name t.report.Netcov.coverage) env.ft_tests;
  let suite = suite_report env.ft_state env.ft_tests in
  row "Test Suite" suite.Netcov.coverage;
  Printf.printf
    "(paper: DefaultRouteCheck 81.5%%, ToRPingmesh 82.1%%, ExportAggregate \
     80.7%% with a large weak share, suite 85.3%%)\n"

(* ------------------------------------------------------------------ *)
(* Figure 10(a): per-test times on Internet2                           *)
(* ------------------------------------------------------------------ *)

let fig10a () =
  section "Figure 10(a): Internet2 test execution vs coverage computation time";
  let env = Lazy.force i2_env in
  Printf.printf "%-24s %10s %12s %10s %10s\n" "test" "exec(s)" "coverage(s)"
    "sims(s)" "label(s)";
  let bagpipe = bagpipe_of env in
  List.iter
    (fun t ->
      let tm = t.report.Netcov.timing in
      Printf.printf "%-24s %10.3f %12.3f %10.3f %10.3f\n" t.test.Nettest.name
        t.exec_s tm.Netcov.total_s tm.Netcov.sim_s tm.Netcov.label_s)
    bagpipe;
  let exec_total = List.fold_left (fun a t -> a +. t.exec_s) 0. bagpipe in
  let suite, cov_s = timed (fun () -> suite_report env.state bagpipe) in
  let tm = suite.Netcov.timing in
  Printf.printf "%-24s %10.3f %12.3f %10.3f %10.3f\n" "Full suite" exec_total
    cov_s tm.Netcov.sim_s tm.Netcov.label_s;
  let hits, misses =
    List.fold_left
      (fun (h, m) t ->
        ( h + t.report.Netcov.timing.Netcov.sim_cache_hits,
          m + t.report.Netcov.timing.Netcov.sim_cache_misses ))
      (tm.Netcov.sim_cache_hits, tm.Netcov.sim_cache_misses)
      bagpipe
  in
  Printf.printf
    "targeted-simulation memo cache: %d hits / %d misses (%.1f%% hit rate)\n"
    hits misses
    (100. *. float_of_int hits /. float_of_int (max 1 (hits + misses)));
  Printf.printf
    "test execution including the control-plane computation the tests run \
     against: %.2fs (the paper's 2358s includes Batfish's data plane \
     generation)\n"
    (env.sim_s +. exec_total);
  Printf.printf
    "(paper: full suite coverage 99.4s vs execution 2358s; simulations and \
     labeling are minority components; suite < sum of individual runs)\n"

(* ------------------------------------------------------------------ *)
(* Figure 10(b): scaling with fat-tree size                            *)
(* ------------------------------------------------------------------ *)

let fig10b () =
  section "Figure 10(b): fat-tree scaling (suite execution vs coverage time)";
  Printf.printf "%-6s %8s %10s %10s %12s %10s\n" "k" "routers" "RIB" "exec(s)"
    "coverage(s)" "cov/exec";
  List.iter
    (fun k ->
      let env = make_ft_env k in
      let rib = Stable_state.total_main_entries env.ft_state in
      let exec_total =
        (* like the paper's, test execution includes producing the data
           plane state the tests inspect *)
        env.ft_sim_s
        +. List.fold_left (fun a t -> a +. t.exec_s) 0. env.ft_tests
      in
      let _, cov_s = timed (fun () -> suite_report env.ft_state env.ft_tests) in
      Printf.printf "%-6d %8d %10d %10.2f %12.2f %9.1f%%\n" k
        (Fattree.router_count k) rib exec_total cov_s
        (100. *. cov_s /. max 1e-9 exec_total))
    [ 4; 6; 8; 10; 12 ];
  Printf.printf
    "(paper: coverage 4413s on the largest network [2,040,624 RIB entries], \
     under 9%% of test execution; both grow superlinearly with size)\n"

(* ------------------------------------------------------------------ *)
(* Figure 11: control-plane vs data-plane coverage                     *)
(* ------------------------------------------------------------------ *)

let fig11_rows state tests =
  List.iter
    (fun t ->
      let dp = Netcov_dpcov.Dpcov.of_tested state t.result.Nettest.tested in
      Printf.printf "%-24s %14s %14s\n" t.test.Nettest.name
        (pct (coverage_pct t.report))
        (pct (Netcov_dpcov.Dpcov.pct dp)))
    tests

let fig11a () =
  section "Figure 11(a): Internet2 -- configuration vs data plane coverage";
  let env = Lazy.force i2_env in
  Printf.printf "%-24s %14s %14s\n" "test" "config-cov" "dataplane-cov";
  fig11_rows env.state env.tests;
  let all = Netcov_dpcov.Dpcov.all_data_plane_tested env.state in
  let report = Netcov.analyze env.state all in
  let dp = Netcov_dpcov.Dpcov.of_tested env.state all in
  Printf.printf "%-24s %14s %14s\n" "All data plane"
    (pct (coverage_pct report))
    (pct (Netcov_dpcov.Dpcov.pct dp));
  Printf.printf
    "(paper: control-plane tests show 0%% data plane coverage; testing 100%% \
     of the data plane still covers only 41%% of configuration)\n"

let fig11b () =
  section "Figure 11(b): fat-tree -- configuration vs data plane coverage";
  let env = Lazy.force ft_env in
  Printf.printf "%-24s %14s %14s\n" "test" "config-cov" "dataplane-cov";
  fig11_rows env.ft_state env.ft_tests;
  Printf.printf
    "(paper: DefaultRouteCheck pairs 1.8%% data plane coverage with ~87%% \
     configuration coverage; ToRPingmesh covers 88%% of the data plane but \
     adds little configuration coverage on top)\n"

(* ------------------------------------------------------------------ *)
(* Table 2: element inventory                                          *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2: configuration element types (instances per workload)";
  let env = Lazy.force i2_env in
  let ft = Lazy.force ft_env in
  let count reg =
    let tbl = Hashtbl.create 16 in
    Registry.iter_elements reg (fun e ->
        let k = Element.etype_of e in
        Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0));
    tbl
  in
  let i2_counts = count (Stable_state.registry env.state) in
  let ft_counts = count (Stable_state.registry ft.ft_state) in
  Printf.printf "%-24s %10s %10s\n" "element type" "internet2" "fattree-8";
  List.iter
    (fun et ->
      let get tbl = Option.value (Hashtbl.find_opt tbl et) ~default:0 in
      Printf.printf "%-24s %10d %10d\n" (Element.etype_to_string et)
        (get i2_counts) (get ft_counts))
    Element.all_etypes

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md)                                               *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation: lazy IFG and the disjunction-free variable heuristic";
  let env = Lazy.force ft_env in
  let t =
    List.find (fun t -> t.test.Nettest.name = "ExportAggregate") env.ft_tests
  in
  let ctx = Rules.make_ctx env.ft_state in
  let g, tested_ids, mstats =
    Materialize.run ctx ~tested:t.result.Nettest.tested.Netcov.dp_facts
  in
  let with_h, t_with = timed (fun () -> Label.run g ~tested:tested_ids) in
  let without_h, t_without =
    timed (fun () -> Label.run ~disjfree_heuristic:false g ~tested:tested_ids)
  in
  Printf.printf "labeling with heuristic:    %.3fs, %d BDD vars\n" t_with
    with_h.Label.vars;
  Printf.printf "labeling without heuristic: %.3fs, %d BDD vars\n" t_without
    without_h.Label.vars;
  Printf.printf "identical results: %b\n"
    (Element.Id_set.equal with_h.Label.strong without_h.Label.strong
    && Element.Id_set.equal with_h.Label.weak without_h.Label.weak);
  let ctx_all = Rules.make_ctx env.ft_state in
  let all = Netcov_dpcov.Dpcov.all_data_plane_tested env.ft_state in
  let _, _, eager_stats = Materialize.run ctx_all ~tested:all.Netcov.dp_facts in
  Printf.printf
    "lazy IFG for ExportAggregate: %d nodes (%.3fs); eager over the full \
     data plane: %d nodes (%.3fs)\n"
    mstats.Materialize.nodes mstats.Materialize.rule_seconds
    eager_stats.Materialize.nodes eager_stats.Materialize.rule_seconds

(* ------------------------------------------------------------------ *)
(* Mutation coverage comparison (paper section 3.1)                    *)
(* ------------------------------------------------------------------ *)

let float_median xs =
  match List.sort Float.compare xs with
  | [] -> 0.
  | s -> List.nth s (List.length s / 2)

(* Stratified element sample: every (total/n)-th element id, so all
   element kinds and devices are represented without running the full
   per-element sweep. *)
let mutation_sample reg n =
  let total = Registry.n_elements reg in
  if total <= n then List.init total Fun.id
  else
    let step = total / n in
    List.init n (fun i -> i * step)

(* Warm and scratch generate mutants in identical deterministic order,
   so per-mutant times pair positionally. *)
let mutation_speedups (warm : Mutation.result) (scratch : Mutation.result) =
  if List.length warm.Mutation.outcomes <> List.length scratch.Mutation.outcomes
  then []
  else
    List.filter_map
      (fun ((w : Mutation.outcome), (s : Mutation.outcome)) ->
        if
          w.Mutation.o_element = s.Mutation.o_element
          && w.Mutation.o_op = s.Mutation.o_op
          && w.Mutation.o_seconds > 0.
        then Some (s.Mutation.o_seconds /. w.Mutation.o_seconds)
        else None)
      (List.combine warm.Mutation.outcomes scratch.Mutation.outcomes)

let mutation_verdicts_identical (a : Mutation.result) (b : Mutation.result) =
  Element.Id_set.equal a.Mutation.killed b.Mutation.killed
  && Element.Id_set.equal a.Mutation.survived b.Mutation.survived
  && Element.Id_set.equal a.Mutation.skipped b.Mutation.skipped

type mut_row = {
  mm_name : string;
  mm_elements : int;
  mm_mutants : int;
  mm_warm : Mutation.result;
  mm_scratch : Mutation.result;
  mm_median_speedup : float;
  mm_identical : bool;
}

let run_mutation_row name reg facts sample =
  let oracle = Mutation.facts_oracle facts in
  let warm = Mutation.run reg ~oracle ~elements:sample ~mode:Mutation.Warm () in
  let scratch =
    Mutation.run reg ~oracle ~elements:sample ~mode:Mutation.Scratch ()
  in
  {
    mm_name = name;
    mm_elements = List.length sample;
    mm_mutants = warm.Mutation.mutants_run;
    mm_warm = warm;
    mm_scratch = scratch;
    mm_median_speedup = float_median (mutation_speedups warm scratch);
    mm_identical = mutation_verdicts_identical warm scratch;
  }

let print_mut_row r =
  Printf.printf
    "%-12s %4d elements %4d mutants | warm %6.2fs scratch %6.2fs | median \
     per-mutant speedup %6.2fx | verdicts %s | killed/survived/skipped \
     %d/%d/%d\n"
    r.mm_name r.mm_elements r.mm_mutants r.mm_warm.Mutation.seconds
    r.mm_scratch.Mutation.seconds r.mm_median_speedup
    (if r.mm_identical then "identical" else "DIVERGED")
    (Element.Id_set.cardinal r.mm_warm.Mutation.killed)
    (Element.Id_set.cardinal r.mm_warm.Mutation.survived)
    (Element.Id_set.cardinal r.mm_warm.Mutation.skipped)

(* Seconds-scale gate (@mutation-smoke): warm (incremental) mutant
   execution must produce verdicts identical to the scratch reference
   on a sampled k=4 fat-tree, with a median per-mutant speedup of at
   least 2x, and every sampled mutant must be a single-device edit
   under Registry_diff. *)
let mutation_smoke () =
  section "Mutation smoke: warm vs scratch verdict identity + speedup gate";
  let ft = Fattree.generate ~k:4 () in
  let reg = Registry.build ft.Fattree.devices in
  let state = Stable_state.compute reg in
  let t = Datacenter.default_route_check ft in
  let r = t.Nettest.run state in
  let facts = r.Nettest.tested.Netcov.dp_facts in
  let sample = mutation_sample reg 24 in
  let row = run_mutation_row "fattree-k4" reg facts sample in
  print_mut_row row;
  let failures = ref [] in
  if not row.mm_identical then
    failures := "warm and scratch mutant verdicts diverge" :: !failures;
  if row.mm_median_speedup < 2. then
    failures :=
      Printf.sprintf "median per-mutant speedup %.2fx < 2x"
        row.mm_median_speedup
      :: !failures;
  (* Registry_diff single-device sanity on a few mutants. *)
  List.iteri
    (fun i id ->
      if i < 3 then
        match Mutation.mutants_of reg id with
        | Some (m :: _) ->
            let d =
              Registry_diff.diff ~old:reg (Mutation.mutant_registry reg m)
            in
            if
              d.Registry_diff.devices_changed
              <> [ m.Mutation.mu_element.Element.device ]
            then
              failures :=
                Printf.sprintf
                  "mutant of element %d is not a single-device edit" id
                :: !failures
        | _ -> ())
    sample;
  if !failures <> [] then begin
    List.iter (Printf.eprintf "mutation smoke failure: %s\n") !failures;
    exit 1
  end;
  Printf.printf "mutation smoke ok (median per-mutant speedup %.2fx)\n"
    row.mm_median_speedup

(* Full run: fattree-k8 sampled sweep, writes BENCH_mutation.json
   (docs/MUTATION.md, bench methodology). *)
let mutation_full () =
  section
    "Mutation coverage: warm (incremental) vs scratch mutant execution, \
     and vs IFG coverage (paper section 3.1)";
  let ft = Lazy.force ft_env in
  let reg = Stable_state.registry ft.ft_state in
  (* The oracle re-checks its facts once per mutant, so its cost scales
     the whole sweep: use the default-route suite (one fact per leaf
     pair end-point) rather than the merged full suite's tens of
     thousands of facts, matching the per-mutant cost profile a user
     validating one property would see. *)
  let t = Datacenter.default_route_check ft.ft in
  let r = t.Nettest.run ft.ft_state in
  let facts = r.Nettest.tested.Netcov.dp_facts in
  let sample = mutation_sample reg 48 in
  let row = run_mutation_row "fattree-k8" reg facts sample in
  print_mut_row row;
  (* IFG agreement on the same sample, for the section 3.1 comparison. *)
  let report = suite_report ft.ft_state ft.ft_tests in
  let covered = Coverage.covered_elements report.Netcov.coverage in
  let sample_covered =
    List.filter (fun id -> Element.Id_set.mem id covered) sample
  in
  let killed = row.mm_warm.Mutation.killed in
  let only_ifg =
    List.filter (fun id -> not (Element.Id_set.mem id killed)) sample_covered
  in
  let only_mut =
    List.filter
      (fun id ->
        Element.Id_set.mem id killed
        && not (Element.Id_set.mem id covered))
      sample
  in
  Printf.printf
    "IFG agreement on sample: %d covered, %d only-IFG (fall-through \
     masking), %d only-mutation (competitor suppression)\n"
    (List.length sample_covered) (List.length only_ifg)
    (List.length only_mut);
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    "  \"description\": \"warm (Stable_state.update_devices seeded from \
     the baseline fixed point) vs scratch (Registry.build + \
     Stable_state.compute) mutant execution on a sampled fattree-k8 \
     element sweep; identical must stay true and the median per-mutant \
     speedup is the headline number (target >= 5x)\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"workload\": \"%s\", \"elements\": %d, \"mutants\": %d,\n"
       row.mm_name row.mm_elements row.mm_mutants);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"warm_wall_s\": %.4f, \"scratch_wall_s\": %.4f,\n"
       row.mm_warm.Mutation.seconds row.mm_scratch.Mutation.seconds);
  let speedups = mutation_speedups row.mm_warm row.mm_scratch in
  let mean =
    if speedups = [] then 0.
    else List.fold_left ( +. ) 0. speedups /. float_of_int (List.length speedups)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"median_per_mutant_speedup\": %.3f, \
        \"mean_per_mutant_speedup\": %.3f, \"identical\": %b,\n"
       row.mm_median_speedup mean row.mm_identical);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"killed\": %d, \"survived\": %d, \"skipped\": %d,\n"
       (Element.Id_set.cardinal killed)
       (Element.Id_set.cardinal row.mm_warm.Mutation.survived)
       (Element.Id_set.cardinal row.mm_warm.Mutation.skipped));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"sample_ifg_covered\": %d, \"only_ifg\": %d, \"only_mutation\": \
        %d\n"
       (List.length sample_covered) (List.length only_ifg)
       (List.length only_mut));
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_mutation.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_mutation.json\n"

let mutation () = if !smoke then mutation_smoke () else mutation_full ()

(* ------------------------------------------------------------------ *)
(* What-if: coverage under failures (section 8 discussion)             *)
(* ------------------------------------------------------------------ *)

let whatif () =
  section
    "What-if extension: single-path fat-tree coverage under single link \
     failures (elements only exercised in failure environments)";
  (* a single-path (no-ECMP) fat-tree: the fault-free run exercises only
     the selected uplinks; failures shift traffic onto the backups *)
  let ft = Fattree.generate ~k:4 ~multipath:1 () in
  let reg = Registry.build ft.Fattree.devices in
  let state = Stable_state.compute reg in
  (* ExportAggregate weakly covers every contributor even without ECMP,
     masking the effect; use the two reachability tests *)
  let suite = [ Datacenter.default_route_check ft; Datacenter.tor_pingmesh ft ] in
  let result, secs = timed (fun () -> Whatif.run state suite) in
  let stats cov = Coverage.pct (Coverage.line_stats cov) in
  Printf.printf "baseline suite coverage:        %s\n" (pct (stats result.Whatif.baseline));
  Printf.printf "union over %2d failure scenarios: %s (%.1fs)\n"
    (List.length result.Whatif.scenarios)
    (pct (stats result.Whatif.union))
    secs;
  Printf.printf "elements covered only under failures: %d\n"
    (Element.Id_set.cardinal (Whatif.failure_only result));
  Printf.printf
    "(paper section 8: some configuration lines are only exercised under \
     specific environments such as failures)\n"

(* ------------------------------------------------------------------ *)
(* iBGP design comparison (extension)                                  *)
(* ------------------------------------------------------------------ *)

let rr () =
  section
    "Extension: coverage under full-mesh vs route-reflector iBGP design \
     (Internet2, improved suite)";
  let run design name =
    let params =
      { Internet2.default_params with Internet2.ibgp = design; n_peers = 60 }
    in
    let net = Internet2.generate params in
    let state = Stable_state.compute (Registry.build net.Internet2.devices) in
    let results = Nettest.run_suite state (Iterations.improved_suite net) in
    let report = Netcov.analyze state (Nettest.suite_tested results) in
    let stats = Coverage.line_stats report.Netcov.coverage in
    Printf.printf "%-28s coverage %s (%d edges, %d rounds)\n" name
      (pct (Coverage.pct stats))
      (List.length (Stable_state.edges state))
      (Stable_state.rounds state)
  in
  run Internet2.Full_mesh "iBGP full mesh";
  run (Internet2.Route_reflectors 2) "2 route reflectors";
  Printf.printf
    "(the reflector design concentrates iBGP edges: fewer sessions exist, \
     and the reflectors' configuration becomes a non-local contributor to \
     every tested remote route)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-kernels                                              *)
(* ------------------------------------------------------------------ *)

let kernels () =
  section "Micro-kernels (Bechamel, ns/op)";
  let open Bechamel in
  let open Toolkit in
  let bdd_test =
    Test.make ~name:"bdd-conj-32"
      (Staged.stage (fun () ->
           let m = Netcov_bdd.Bdd.create () in
           let vars = List.init 32 (Netcov_bdd.Bdd.var m) in
           ignore (Netcov_bdd.Bdd.conj m vars)))
  in
  let trie =
    let open Netcov_types in
    List.init 1024 (fun i ->
        (Prefix.make (Ipv4.of_octets (i mod 224) (i / 8 mod 250) 0 0) 16, i))
    |> Netcov_types.Prefix_trie.of_list
  in
  let trie_test =
    Test.make ~name:"trie-lpm"
      (Staged.stage (fun () ->
           ignore
             (Netcov_types.Prefix_trie.longest_match
                (Netcov_types.Ipv4.of_octets 100 50 1 1)
                trie)))
  in
  let env = Lazy.force i2_env in
  let d = Stable_state.find_device env.state (List.hd env.net.Internet2.routers) in
  let route =
    Netcov_types.Route.originate
      (Netcov_types.Prefix.of_string "100.0.1.0/24")
      ~next_hop:Netcov_types.Ipv4.zero
  in
  let chain =
    match d.Device.bgp with
    | Some b -> (
        match
          List.find_opt (fun (nb : Device.neighbor) -> nb.nb_import <> []) b.neighbors
        with
        | Some nb -> Device.neighbor_import d nb
        | None -> [])
    | None -> []
  in
  let policy_test =
    Test.make ~name:"policy-chain-eval"
      (Staged.stage (fun () ->
           ignore
             (Netcov_policy.Eval.run_chain d ~chain
                ~default:Netcov_policy.Eval.Accepted route)))
  in
  let re = Netcov_types.As_regex.compile "_(64512|65000|65534)_" in
  let path = Netcov_types.As_path.of_list [ 3356; 1299; 65000; 44; 3 ] in
  let regex_test =
    Test.make ~name:"as-regex-match"
      (Staged.stage (fun () -> ignore (Netcov_types.As_regex.matches re path)))
  in
  let mat_state = env.state in
  let tested_fact =
    let host = List.hd env.net.Internet2.routers in
    match Netcov_sim.Rib.table_entries (Stable_state.main_rib mat_state host) with
    | (_, entry) :: _ -> [ Fact.F_main_rib { host; entry } ]
    | [] -> []
  in
  let ifg_test =
    Test.make ~name:"ifg-materialize-1-fact"
      (Staged.stage (fun () ->
           let ctx = Rules.make_ctx mat_state in
           ignore (Materialize.run ctx ~tested:tested_fact)))
  in
  let grouped =
    Test.make_grouped ~name:"netcov"
      [ bdd_test; trie_test; policy_test; regex_test; ifg_test ]
  in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Printf.sprintf "%12.1f ns/op" x
        | Some [] | None -> "n/a"
      in
      Printf.printf "%-36s %s\n" name est)
    results;
  (* Apply-cache effectiveness on a representative predicate build:
     cone predicates rebuild the same conjunction/disjunction shapes
     repeatedly, so the second pass should be answered by the cache. *)
  let m = Netcov_bdd.Bdd.create ~cache_size:(1 lsl 16) () in
  let vars = List.init 64 (Netcov_bdd.Bdd.var m) in
  for _ = 1 to 2 do
    let c = Netcov_bdd.Bdd.conj m vars in
    let d = Netcov_bdd.Bdd.disj m vars in
    ignore (Netcov_bdd.Bdd.bdd_xor m c d);
    List.iter
      (fun v -> ignore (Netcov_bdd.Bdd.bdd_and m (Netcov_bdd.Bdd.bdd_not m v) d))
      vars
  done;
  let st = Netcov_bdd.Bdd.cache_stats m in
  Printf.printf
    "bdd apply cache: %d hits / %d misses over %d slots (%.1f%% hit rate)\n"
    st.Netcov_bdd.Bdd.hits st.Netcov_bdd.Bdd.misses st.Netcov_bdd.Bdd.slots
    (100.
    *. float_of_int st.Netcov_bdd.Bdd.hits
    /. float_of_int (max 1 (st.Netcov_bdd.Bdd.hits + st.Netcov_bdd.Bdd.misses)))

(* ------------------------------------------------------------------ *)
(* Multicore scaling + simulation memo cache (BENCH_parallel.json)     *)
(* ------------------------------------------------------------------ *)

let counter_value name =
  match Netcov_obs.Metrics.value Netcov_obs.Metrics.default name with
  | Some (Netcov_obs.Metrics.Counter n) -> n
  | _ -> 0

(* Process-wide allocation high-water mark. [top_heap_words] is
   monotone over the process lifetime and never reset (not even by
   [Gc.compact]), so an absolute per-row reading is only an upper
   bound: a row that runs after a bigger workload inherits its
   watermark. Rows therefore also report the *delta* — how much the
   row itself raised the watermark; 0 means the row fit in heap the
   process had already grown. *)
let peak_heap_mb () =
  float_of_int ((Gc.quick_stat ()).Gc.top_heap_words * (Sys.word_size / 8))
  /. (1024. *. 1024.)

type scaling_row = {
  sr_domains : int;
  sr_wall : float;
  sr_speedup : float;
  sr_identical : bool;
  sr_oversubscribed : bool;
  sr_stolen : int;  (** pool.tasks.stolen delta over the run *)
  sr_sleeps : int;  (** pool.sleeps delta over the run *)
  sr_contended : int;  (** intern.lock.contended delta over the run *)
  sr_peak_mb : float;  (** process-wide watermark after the run *)
  sr_peak_delta_mb : float;  (** how much this row raised it *)
}

(* One workload at each domain count, with scheduler/interner
   contention deltas around each run. [domain_counts] must contain 1:
   speedups and report identity are both relative to the 1-domain
   run. *)
let run_scaling_rows ~cores ~domain_counts state testeds =
  let cov_of (reports, wall) =
    Json_export.coverage
      (Netcov.merge_reports ~wall_s:wall reports).Netcov.coverage
  in
  let run_at domains =
    let st0 = counter_value "pool.tasks.stolen" in
    let sl0 = counter_value "pool.sleeps" in
    let ct0 = counter_value "intern.lock.contended" in
    let p0 = peak_heap_mb () in
    let r =
      Pool.with_pool ~domains (fun pool ->
          timed (fun () -> Netcov.analyze_suite ~pool state testeds))
    in
    let peak = peak_heap_mb () in
    ( r,
      counter_value "pool.tasks.stolen" - st0,
      counter_value "pool.sleeps" - sl0,
      counter_value "intern.lock.contended" - ct0,
      peak,
      peak -. p0 )
  in
  let runs = List.map (fun d -> (d, run_at d)) domain_counts in
  let base, _, _, _, _, _ = List.assoc 1 runs in
  let reference = cov_of base in
  let base_wall = snd base in
  List.map
    (fun (d, (((_, wall) as r), stolen, sleeps, contended, peak, delta)) ->
      {
        sr_domains = d;
        sr_wall = wall;
        sr_speedup = base_wall /. max 1e-9 wall;
        sr_identical = String.equal reference (cov_of r);
        sr_oversubscribed = d > cores;
        sr_stolen = stolen;
        sr_sleeps = sleeps;
        sr_contended = contended;
        sr_peak_mb = peak;
        sr_peak_delta_mb = delta;
      })
    runs

let print_scaling_row r =
  Printf.printf
    "  domains=%d  wall %7.3fs  speedup %5.2fx  identical-report %b  \
     stolen=%d sleeps=%d intern-contended=%d  peak %.0fMB (+%.0fMB)%s\n"
    r.sr_domains r.sr_wall r.sr_speedup r.sr_identical r.sr_stolen r.sr_sleeps
    r.sr_contended r.sr_peak_mb r.sr_peak_delta_mb
    (if r.sr_oversubscribed then "  [oversubscribed: > hardware cores]" else "")

let row_json r =
  Printf.sprintf
    "{\"domains\": %d, \"wall_s\": %.4f, \"speedup\": %.3f, \"identical\": \
     %b, \"oversubscribed\": %b, \"tasks_stolen\": %d, \"sleeps\": %d, \
     \"intern_lock_contended\": %d, \"peak_heap_mb\": %.1f, \
     \"peak_heap_delta_mb\": %.1f}"
    r.sr_domains r.sr_wall r.sr_speedup r.sr_identical r.sr_oversubscribed
    r.sr_stolen r.sr_sleeps r.sr_contended r.sr_peak_mb r.sr_peak_delta_mb

(* ------------------------------------------------------------------ *)
(* Labeling engine: shared per-domain arena vs fresh-manager-per-cone  *)
(* ------------------------------------------------------------------ *)

type label_row = {
  lb_name : string;
  lb_tests : int;
  lb_fresh_wall : float;  (** materialize+label suite wall, fresh engine *)
  lb_arena_wall : float;  (** same suite, shared-arena engine *)
  lb_fresh_label_s : float;  (** labeling-only seconds, fresh engine *)
  lb_arena_label_s : float;
  lb_identical : bool;  (** byte-identical coverage JSON *)
  lb_gamma_hits : int;  (** cross-cone gamma memo hits, arena run *)
  lb_gamma_misses : int;
  lb_arena_nodes : int;  (** arena size after the run, before trim *)
  lb_peak_delta_mb : float;
      (** watermark raise of the arena run, measured after the fresh
          run: > 0 means the shared engine needed more heap than the
          fresh-per-cone engine ever did *)
}

let label_speedup r = r.lb_fresh_label_s /. max 1e-9 r.lb_arena_label_s

let label_hit_rate r =
  float_of_int r.lb_gamma_hits
  /. float_of_int (max 1 (r.lb_gamma_hits + r.lb_gamma_misses))

(* Both engines run the identical suite sequentially (one domain, so
   one arena) to isolate the labeling engine from scheduling. The
   fresh (legacy) engine runs first: since [top_heap_words] is
   monotone, the arena run's watermark delta then directly answers
   "did the shared arena cost more heap than fresh-per-cone managers"
   — 0 means no. The arena is trimmed before and after each row so
   node counts are attributable and rows stay independent. *)
let run_label_row name state testeds =
  Label.trim_arena ();
  let run ~arena =
    timed (fun () ->
        Netcov.analyze_suite ~pool:Pool.sequential ~label_arena:arena state
          testeds)
  in
  let fresh_reports, fresh_wall = run ~arena:false in
  let h0 = counter_value "bdd.gamma.hits" in
  let m0 = counter_value "bdd.gamma.misses" in
  let p0 = peak_heap_mb () in
  let arena_reports, arena_wall = run ~arena:true in
  let arena_nodes = Label.arena_node_count () in
  let peak_delta = peak_heap_mb () -. p0 in
  let label_s reports =
    (Netcov.merge_reports reports).Netcov.timing.Netcov.label_s
  in
  let cov reports =
    Json_export.coverage (Netcov.merge_reports reports).Netcov.coverage
  in
  let row =
    {
      lb_name = name;
      lb_tests = List.length testeds;
      lb_fresh_wall = fresh_wall;
      lb_arena_wall = arena_wall;
      lb_fresh_label_s = label_s fresh_reports;
      lb_arena_label_s = label_s arena_reports;
      lb_identical = String.equal (cov fresh_reports) (cov arena_reports);
      lb_gamma_hits = counter_value "bdd.gamma.hits" - h0;
      lb_gamma_misses = counter_value "bdd.gamma.misses" - m0;
      lb_arena_nodes = arena_nodes;
      lb_peak_delta_mb = peak_delta;
    }
  in
  Label.trim_arena ();
  row

let print_label_row r =
  Printf.printf
    "  %-12s %3d tests  label %7.3fs fresh -> %7.3fs arena (%5.2fx)  wall \
     %7.3fs -> %7.3fs  gamma %d/%d (%.1f%% hit)  arena-nodes %d  \
     heap-delta %+.0fMB  identical %b\n"
    r.lb_name r.lb_tests r.lb_fresh_label_s r.lb_arena_label_s
    (label_speedup r) r.lb_fresh_wall r.lb_arena_wall r.lb_gamma_hits
    (r.lb_gamma_hits + r.lb_gamma_misses)
    (100. *. label_hit_rate r)
    r.lb_arena_nodes r.lb_peak_delta_mb r.lb_identical

let label_row_json r =
  Printf.sprintf
    "{\"name\": %S, \"tests\": %d, \"fresh_wall_s\": %.4f, \"arena_wall_s\": \
     %.4f, \"fresh_label_s\": %.4f, \"arena_label_s\": %.4f, \
     \"label_speedup\": %.3f, \"identical\": %b, \"gamma_hits\": %d, \
     \"gamma_misses\": %d, \"gamma_hit_rate\": %.4f, \"arena_nodes\": %d, \
     \"peak_heap_delta_mb\": %.1f}"
    r.lb_name r.lb_tests r.lb_fresh_wall r.lb_arena_wall r.lb_fresh_label_s
    r.lb_arena_label_s (label_speedup r) r.lb_identical r.lb_gamma_hits
    r.lb_gamma_misses (label_hit_rate r) r.lb_arena_nodes r.lb_peak_delta_mb

(* CI gate (@bench-scaling-smoke): identical coverage across domain
   counts is always asserted; the 2-domain speedup only where the
   hardware can actually run two domains in parallel. Wall times are
   best-of-two to keep the assertion robust on noisy shared runners. *)
let scaling_smoke () =
  section "Scaling smoke: 1 vs 2 domains, identical coverage + speedup gate";
  let cores = Domain.recommended_domain_count () in
  let ft = Fattree.generate ~k:4 () in
  let state = Stable_state.compute (Registry.build ft.Fattree.devices) in
  let testeds =
    List.map
      (fun (_, r) -> r.Nettest.tested)
      (Nettest.run_suite state (Datacenter.suite ft))
  in
  let cov_of (reports, wall) =
    Json_export.coverage
      (Netcov.merge_reports ~wall_s:wall reports).Netcov.coverage
  in
  let run domains =
    Pool.with_pool ~domains (fun pool ->
        timed (fun () -> Netcov.analyze_suite ~pool state testeds))
  in
  let best_of_two domains =
    let a = run domains and b = run domains in
    if snd a <= snd b then a else b
  in
  let r1 = best_of_two 1 in
  let r2 = best_of_two 2 in
  let speedup = snd r1 /. max 1e-9 (snd r2) in
  Printf.printf
    "  fat-tree k=4 suite (%d tests), %d hardware cores: domains=1 %.3fs, \
     domains=2 %.3fs, speedup %.2fx\n"
    (List.length testeds) cores (snd r1) (snd r2) speedup;
  let failures = ref [] in
  if not (String.equal (cov_of r1) (cov_of r2)) then
    failures := "coverage differs between 1 and 2 domains" :: !failures;
  if cores >= 2 then begin
    if speedup <= 1.0 then
      failures :=
        Printf.sprintf
          "no parallel speedup on %d cores: 2 domains ran %.2fx vs 1 domain"
          cores speedup
        :: !failures
  end
  else
    Printf.printf
      "  (1 hardware core: speedup assertion skipped — 2 domains can only \
       time-slice here; identical-coverage still asserted)\n";
  if !failures <> [] then begin
    List.iter (Printf.eprintf "scaling smoke failure: %s\n") !failures;
    exit 1
  end;
  Printf.printf "scaling smoke ok\n"

let scaling_full () =
  section "Scaling: suite coverage across domain counts + sim memo cache";
  let env = Lazy.force ft_env in
  let testeds = List.map (fun t -> t.result.Nettest.tested) env.ft_tests in
  (* Honesty: [cores] is what this host can actually run in parallel.
     Domain counts beyond it measure scheduling overhead, not scaling,
     so they are skipped by default and only run (flagged) under
     --oversubscribe. *)
  let cores = Domain.recommended_domain_count () in
  let filter_counts all =
    if !oversubscribe then all
    else 1 :: List.filter (fun d -> d > 1 && d <= cores) all
  in
  let all_counts = [ 1; 2; 4; 8 ] in
  let domain_counts = filter_counts all_counts in
  let skipped =
    List.filter (fun d -> not (List.mem d domain_counts)) all_counts
  in
  if skipped <> [] then
    Printf.printf
      "  (skipping domain counts %s: above the %d hardware cores; pass \
       --oversubscribe to measure them)\n"
      (String.concat ", " (List.map string_of_int skipped))
      cores;
  Printf.printf "fat-tree k=8 suite (%d tests), %d hardware cores:\n"
    (List.length testeds) cores;
  let rows = run_scaling_rows ~cores ~domain_counts env.ft_state testeds in
  List.iter print_scaling_row rows;
  (* Mega-workloads: deep-cone networks an order of magnitude past the
     primary workload, at a reduced domain grid (their simulations
     dominate; the analyze phase is what scales). *)
  let mega_counts = filter_counts [ 1; 2; 4 ] in
  let mega_specs =
    [
      ( "fattree-k16",
        fun () ->
          let e = make_ft_env 16 in
          ( List.length e.ft.Fattree.devices,
            e.ft_sim_s,
            e.ft_state,
            List.map (fun t -> t.result.Nettest.tested) e.ft_tests ) );
      ( "rr-wan",
        fun () ->
          let w = Wan.generate () in
          let reg = Registry.build w.Wan.devices in
          let state, sim_s = timed (fun () -> Stable_state.compute reg) in
          let testeds =
            List.map
              (fun (_, r) -> r.Nettest.tested)
              (Nettest.run_suite state (Wan_suite.suite w))
          in
          (List.length w.Wan.devices, sim_s, state, testeds) );
      ( "netgen-1000",
        fun () ->
          let net = Netcov_check.Netgen.balanced ~fanout:4 1000 in
          let devices = Netcov_check.Netgen.devices_of net in
          let state, sim_s =
            timed (fun () -> Stable_state.compute (Registry.build devices))
          in
          let testeds =
            List.map
              (Netcov_check.Netgen.tested_of state)
              (Netcov_check.Netgen.balanced_specs net)
          in
          (List.length devices, sim_s, state, testeds) );
    ]
  in
  (* Labeling-engine rows ride along while each mega state is still
     alive (building fattree-k16 twice would double the bench's
     dominant cost); internet2/fattree-k8 rows are added below from
     the shared envs. *)
  let label_extra = ref [] in
  let mega =
    List.map
      (fun (name, make) ->
        let n_devices, sim_s, state, testeds = make () in
        Printf.printf "%s (%d devices, %d tests, sim %.2fs):\n" name n_devices
          (List.length testeds) sim_s;
        let rows =
          run_scaling_rows ~cores ~domain_counts:mega_counts state testeds
        in
        List.iter print_scaling_row rows;
        if List.mem name [ "fattree-k16"; "rr-wan" ] then
          label_extra := run_label_row name state testeds :: !label_extra;
        (name, n_devices, List.length testeds, sim_s, rows))
      mega_specs
  in
  Printf.printf
    "labeling engine (shared per-domain arena vs fresh-manager-per-cone, \
     sequential):\n";
  let label_rows =
    run_label_row "internet2" (Lazy.force i2_env).state
      (List.map
         (fun t -> t.result.Nettest.tested)
         (Lazy.force i2_env).tests)
    :: run_label_row "fattree-k8" env.ft_state testeds
    :: List.rev !label_extra
  in
  List.iter print_label_row label_rows;
  List.iter
    (fun r ->
      if not r.lb_identical then begin
        Printf.eprintf
          "label engine REGRESSION: %s coverage differs between arena and \
           fresh engines\n"
          r.lb_name;
        exit 1
      end)
    label_rows;
  (* Memo-cache effect, measured sequentially on the Internet2 suite
     (its iBGP full mesh shares policy chains across sessions). The
     canonical-key runs strip pass-through route attributes from the
     cache key (lib/core/rules.ml), so "before" is the historical
     full-route key and "after" the canonical one. *)
  let i2 = Lazy.force i2_env in
  let i2_testeds = List.map (fun t -> t.result.Nettest.tested) i2.tests in
  let run_cache ~sim_cache ~sim_canon =
    timed (fun () ->
        Netcov.analyze_suite ~pool:Pool.sequential ~sim_cache ~sim_canon
          i2.state i2_testeds)
  in
  let rate_of reports =
    let tm = (Netcov.merge_reports reports).Netcov.timing in
    let h = tm.Netcov.sim_cache_hits and m = tm.Netcov.sim_cache_misses in
    (h, m, float_of_int h /. float_of_int (max 1 (h + m)))
  in
  let full_reports, full_wall = run_cache ~sim_cache:true ~sim_canon:false in
  let on_reports, on_wall = run_cache ~sim_cache:true ~sim_canon:true in
  let off_reports, off_wall = run_cache ~sim_cache:false ~sim_canon:true in
  let on_merged = Netcov.merge_reports ~wall_s:on_wall on_reports in
  let hits, misses, hit_rate = rate_of on_reports in
  let fk_hits, fk_misses, fk_rate = rate_of full_reports in
  let cache_identical =
    String.equal
      (Json_export.coverage on_merged.Netcov.coverage)
      (Json_export.coverage (Netcov.merge_reports off_reports).Netcov.coverage)
    && String.equal
         (Json_export.coverage on_merged.Netcov.coverage)
         (Json_export.coverage
            (Netcov.merge_reports full_reports).Netcov.coverage)
  in
  Printf.printf
    "internet2 suite sim cache: %d hits / %d misses (%.1f%% hit rate), wall \
     %.3fs on vs %.3fs off (%.2fx), identical-report %b\n"
    hits misses (100. *. hit_rate) on_wall off_wall
    (off_wall /. max 1e-9 on_wall)
    cache_identical;
  Printf.printf
    "  key canonicalization: %.1f%% hit rate with full-route keys (%d/%d) -> \
     %.1f%% with canonical keys (wall %.3fs -> %.3fs)\n"
    (100. *. fk_rate) fk_hits (fk_hits + fk_misses) (100. *. hit_rate)
    full_wall on_wall;
  (* The memo cache must never cost more than it saves: keys carry a
     precomputed hash and probe without re-canonicalizing the route
     (lib/core/rules.ml), so the cached run has to stay within noise
     of the uncached one even on hit-hostile workloads. *)
  let cache_regression = on_wall > off_wall *. 1.05 in
  if cache_regression then
    Printf.eprintf
      "sim cache REGRESSION: cached run %.3fs vs uncached %.3fs (%.2fx > \
       1.05x) — the memo cache is costing more than it saves\n"
      on_wall off_wall
      (on_wall /. max 1e-9 off_wall);
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"workload\": \"fattree-k8-suite\",\n";
  Printf.bprintf buf "  \"cores\": %d,\n" cores;
  Buffer.add_string buf
    "  \"scheduler\": \"per-domain deques, cone-granularity tasks, \
     help-first work stealing (lib/parallel/pool.ml)\",\n";
  Buffer.add_string buf
    "  \"note\": \"domain counts above hardware cores are skipped unless \
     --oversubscribe is passed; rows with oversubscribed=true measure \
     scheduling overhead, not scaling. peak_heap_mb is the process-wide \
     GC high-water mark at the end of the row — monotone over the whole \
     run, so later rows inherit earlier rows' watermark and the absolute \
     value is only an upper bound; peak_heap_delta_mb is how much the row \
     itself raised the watermark (0 = the row fit in heap the process had \
     already grown)\",\n";
  let emit_rows indent to_json rows =
    List.iteri
      (fun i r ->
        Printf.bprintf buf "%s%s%s\n" indent (to_json r)
          (if i < List.length rows - 1 then "," else ""))
      rows
  in
  Buffer.add_string buf "  \"domain_runs\": [\n";
  emit_rows "    " row_json rows;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf "  \"mega_workloads\": [\n";
  List.iteri
    (fun i (name, n_devices, n_tests, sim_s, mrows) ->
      Printf.bprintf buf
        "    {\"name\": %S, \"devices\": %d, \"tests\": %d, \"sim_s\": \
         %.2f, \"rows\": [\n"
        name n_devices n_tests sim_s;
      emit_rows "      " row_json mrows;
      Printf.bprintf buf "    ]}%s\n"
        (if i < List.length mega - 1 then "," else ""))
    mega;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    "  \"label_engine\": {\"note\": \"shared per-domain BDD arena + \
     cross-cone gamma memo + single-pass essential variables vs the \
     legacy fresh-manager-per-cone engine, both sequential on one \
     domain; coverage is byte-identical in every row; \
     peak_heap_delta_mb is the watermark raise of the arena run \
     measured after the fresh run (0 = the shared arena never needed \
     more heap than fresh-per-cone managers did)\", \"rows\": [\n";
  emit_rows "    " label_row_json label_rows;
  Buffer.add_string buf "  ]},\n";
  Printf.bprintf buf
    "  \"sim_cache\": {\"workload\": \"internet2-suite\", \"note\": \
     \"re-measured on this run: full_key is the historical full-route \
     cache key, canonical strips pass-through attributes; keys carry a \
     precomputed hash, so regression (cached wall > 1.05x uncached) \
     must stay false\", \"hits\": %d, \
     \"misses\": %d, \"hit_rate\": %.4f, \"wall_on_s\": %.4f, \"wall_off_s\": \
     %.4f, \"speedup\": %.3f, \"identical\": %b, \"regression\": %b,\n\
    \    \"full_key\": {\"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f, \
     \"wall_s\": %.4f},\n\
    \    \"canonical\": {\"hits\": %d, \"misses\": %d, \"hit_rate\": %.4f, \
     \"wall_s\": %.4f}}\n"
    hits misses hit_rate on_wall off_wall
    (off_wall /. max 1e-9 on_wall)
    cache_identical cache_regression fk_hits fk_misses fk_rate full_wall hits
    misses hit_rate on_wall;
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_parallel.json\n"

let scaling () = if !smoke then scaling_smoke () else scaling_full ()

(* CI gate (@bench-label-smoke): the shared-arena labeling engine must
   produce byte-identical coverage to the legacy fresh-per-cone engine
   on internet2 and fattree-k8, and label fattree-k8 at least 1.5x
   faster. The speedup compares labeling-only seconds (materialize and
   simulation are engine-independent) and takes the best of two
   fattree-k8 runs to stay robust on noisy shared runners; identity is
   asserted on every run. *)
let label_smoke () =
  section "Label engine smoke: arena vs fresh byte-identity + speedup gate";
  let i2 = Lazy.force i2_env in
  let i2_testeds = List.map (fun t -> t.result.Nettest.tested) i2.tests in
  let ft = Lazy.force ft_env in
  let ft_testeds = List.map (fun t -> t.result.Nettest.tested) ft.ft_tests in
  let rows =
    [
      run_label_row "internet2" i2.state i2_testeds;
      run_label_row "fattree-k8" ft.ft_state ft_testeds;
      run_label_row "fattree-k8" ft.ft_state ft_testeds;
    ]
  in
  List.iter print_label_row rows;
  let failures = ref [] in
  List.iter
    (fun r ->
      if not r.lb_identical then
        failures :=
          Printf.sprintf "%s: arena coverage differs from the fresh engine"
            r.lb_name
          :: !failures)
    rows;
  let best =
    List.fold_left
      (fun acc r ->
        if String.equal r.lb_name "fattree-k8" then
          Float.max acc (label_speedup r)
        else acc)
      0. rows
  in
  if best < 1.5 then
    failures :=
      Printf.sprintf
        "fattree-k8 labeling speedup %.2fx < 1.5x (best of two runs)" best
      :: !failures;
  if !failures <> [] then begin
    List.iter (Printf.eprintf "label smoke failure: %s\n") !failures;
    exit 1
  end;
  Printf.printf "label smoke ok (best fattree-k8 labeling speedup %.2fx)\n"
    best

let label_full () =
  section "Labeling engine: shared per-domain arena vs fresh-manager-per-cone";
  let i2 = Lazy.force i2_env in
  let ft = Lazy.force ft_env in
  let rows = ref [] in
  let add r = rows := r :: !rows in
  add
    (run_label_row "internet2" i2.state
       (List.map (fun t -> t.result.Nettest.tested) i2.tests));
  add
    (run_label_row "fattree-k8" ft.ft_state
       (List.map (fun t -> t.result.Nettest.tested) ft.ft_tests));
  (* Scope the mega states so each is collectible before the next one
     is built. *)
  (let e = make_ft_env 16 in
   add
     (run_label_row "fattree-k16" e.ft_state
        (List.map (fun t -> t.result.Nettest.tested) e.ft_tests)));
  (let w = Wan.generate () in
   let state = Stable_state.compute (Registry.build w.Wan.devices) in
   let testeds =
     List.map
       (fun (_, r) -> r.Nettest.tested)
       (Nettest.run_suite state (Wan_suite.suite w))
   in
   add (run_label_row "rr-wan" state testeds));
  let rows = List.rev !rows in
  List.iter print_label_row rows;
  if List.exists (fun r -> not r.lb_identical) rows then begin
    List.iter
      (fun r ->
        if not r.lb_identical then
          Printf.eprintf
            "label engine REGRESSION: %s coverage differs between arena and \
             fresh engines\n"
            r.lb_name)
      rows;
    exit 1
  end

let label_bench () = if !smoke then label_smoke () else label_full ()

(* ------------------------------------------------------------------ *)
(* Interned fact identities (BENCH_intern.json)                        *)
(* ------------------------------------------------------------------ *)

(* Measures exactly what the interner changed: the materialize+label
   pipeline under the two identity modes. [By_key] pays a formatted
   key string per fact-identity operation — the pre-interning
   representation — while [Structural] hashes the fact variant
   directly into dense ids. The targeted-simulation memo cache is
   warmed by an unmeasured run and shared across iterations so policy
   evaluation, identical in both modes, does not dilute the
   identity-cost delta. Coverage equality is checked on the full
   pipeline via the exported JSON (docs/PERFORMANCE.md). *)
let intern_bench () =
  section "Interning: materialize+label under By_key vs Structural identity";
  let workloads =
    if !smoke then [ ("fattree-k4", `Ft 4, 1) ]
    else [ ("fattree-k8", `Ft 8, 5); ("internet2", `I2, 5) ]
  in
  let rows =
    List.map
      (fun (name, w, iters) ->
        let state, tests =
          match w with
          | `Ft k ->
              let ft = Fattree.generate ~k () in
              let state =
                Stable_state.compute (Registry.build ft.Fattree.devices)
              in
              (state, Datacenter.suite ft)
          | `I2 ->
              let net = Internet2.generate Internet2.paper_params in
              let state =
                Stable_state.compute (Registry.build net.Internet2.devices)
              in
              (state, Iterations.improved_suite net)
        in
        let tested = Nettest.suite_tested (Nettest.run_suite state tests) in
        let facts = tested.Netcov.dp_facts in
        let measure mode =
          let cache = Rules.create_sim_cache () in
          let one () =
            let ctx = Rules.make_ctx ~cache state in
            let g, ids, _ = Materialize.run ~mode ctx ~tested:facts in
            ignore (Label.run g ~tested:ids)
          in
          one ();
          let a0 = Gc.allocated_bytes () in
          let (), wall =
            timed (fun () ->
                for _ = 1 to iters do
                  one ()
                done)
          in
          let alloc = Gc.allocated_bytes () -. a0 in
          (wall /. float_of_int iters, alloc /. float_of_int iters)
        in
        let key_wall, key_alloc = measure Intern.By_key in
        let str_wall, str_alloc = measure Intern.Structural in
        let cov mode =
          Json_export.coverage
            (Netcov.analyze ~pool:Pool.sequential ~identity:mode state tested)
              .Netcov.coverage
        in
        let identical =
          String.equal (cov Intern.By_key) (cov Intern.Structural)
        in
        let speedup = key_wall /. max 1e-9 str_wall in
        let alloc_ratio = key_alloc /. max 1. str_alloc in
        let mb b = b /. 1048576. in
        Printf.printf
          "  %-12s facts=%d iters=%d  by_key %7.3fs %8.1fMB  structural \
           %7.3fs %8.1fMB  speedup %.2fx  alloc x%.2f  identical %b\n"
          name (List.length facts) iters key_wall (mb key_alloc) str_wall
          (mb str_alloc) speedup alloc_ratio identical;
        ( name,
          iters,
          List.length facts,
          (key_wall, key_alloc),
          (str_wall, str_alloc),
          speedup,
          alloc_ratio,
          identical ))
      workloads
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"intern\",\n";
  Printf.bprintf buf "  \"smoke\": %b,\n" !smoke;
  Buffer.add_string buf
    "  \"note\": \"materialize+label wall seconds and allocated bytes per \
     iteration; by_key rebuilds formatted fact-key strings per identity \
     operation (the pre-interning representation), structural hashes the \
     fact variant into dense interned ids; the sim memo cache is warmed \
     and shared so both modes pay identical policy-evaluation cost\",\n";
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i
         ( name,
           iters,
           nfacts,
           (key_wall, key_alloc),
           (str_wall, str_alloc),
           speedup,
           alloc_ratio,
           identical ) ->
      Printf.bprintf buf
        "    {\"name\": %S, \"iters\": %d, \"tested_facts\": %d,\n\
        \     \"by_key\": {\"wall_s\": %.4f, \"alloc_bytes\": %.0f},\n\
        \     \"structural\": {\"wall_s\": %.4f, \"alloc_bytes\": %.0f},\n\
        \     \"speedup\": %.3f, \"alloc_ratio\": %.3f, \
         \"identical_coverage\": %b}%s\n"
        name iters nfacts key_wall key_alloc str_wall str_alloc speedup
        alloc_ratio identical
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_intern.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_intern.json\n"

(* ------------------------------------------------------------------ *)
(* Incremental re-analysis (BENCH_incr.json)                           *)
(* ------------------------------------------------------------------ *)

module Incr = Netcov_incr.Incr

(* Candidate one-line value tweaks: bump the numeric argument of one
   existing [set local-preference] / [set metric] action of one policy
   term, leaving everything else untouched. *)
let value_tweaks devs =
  let out = ref [] in
  List.iteri
    (fun di (d : Device.t) ->
      if not d.Device.is_external then
        List.iteri
          (fun pi (p : Policy_ast.policy) ->
            List.iteri
              (fun ti (t : Policy_ast.term) ->
                List.iteri
                  (fun ai a ->
                    let tweak =
                      match a with
                      | Policy_ast.Set_local_pref v ->
                          Some
                            ( Policy_ast.Set_local_pref (v + 5),
                              Printf.sprintf
                                "policy %s/%s term %s: local-pref %d -> %d"
                                d.Device.hostname p.Policy_ast.pol_name
                                t.Policy_ast.term_name v (v + 5) )
                      | Policy_ast.Set_med v ->
                          Some
                            ( Policy_ast.Set_med (v + 7),
                              Printf.sprintf
                                "policy %s/%s term %s: metric %d -> %d"
                                d.Device.hostname p.Policy_ast.pol_name
                                t.Policy_ast.term_name v (v + 7) )
                      | _ -> None
                    in
                    match tweak with
                    | None -> ()
                    | Some (a', desc) ->
                        let devs' =
                          List.mapi
                            (fun dj (dd : Device.t) ->
                              if dj <> di then dd
                              else
                                {
                                  dd with
                                  Device.policies =
                                    List.mapi
                                      (fun pj (pp : Policy_ast.policy) ->
                                        if pj <> pi then pp
                                        else
                                          {
                                            pp with
                                            Policy_ast.terms =
                                              List.mapi
                                                (fun tj (tt : Policy_ast.term) ->
                                                  if tj <> ti then tt
                                                  else
                                                    {
                                                      tt with
                                                      Policy_ast.actions =
                                                        List.mapi
                                                          (fun aj aa ->
                                                            if aj = ai then a'
                                                            else aa)
                                                          tt.Policy_ast.actions;
                                                    })
                                                pp.Policy_ast.terms;
                                          })
                                      dd.Device.policies;
                                })
                            devs
                        in
                        out := (desc, devs') :: !out)
                  t.Policy_ast.actions)
              p.Policy_ast.terms)
          d.Device.policies)
    devs;
  List.rev !out

let ribs_equal st_old st_new =
  Stable_state.all_hosts st_old = Stable_state.all_hosts st_new
  && Stable_state.edges st_old = Stable_state.edges st_new
  && List.for_all
       (fun h ->
         Rib.table_entries (Stable_state.main_rib st_old h)
         = Rib.table_entries (Stable_state.main_rib st_new h)
         && Rib.table_entries (Stable_state.bgp_rib st_old h)
            = Rib.table_entries (Stable_state.bgp_rib st_new h)
         && Rib.table_entries (Stable_state.igp_rib st_old h)
            = Rib.table_entries (Stable_state.igp_rib st_new h))
       (Stable_state.internal_hosts st_old)

(* One-line live edit. Preferred: a behavior-preserving value tweak —
   the everyday case the incremental fast path targets — hunted by
   recomputing the stable state for candidate tweaks until one leaves
   every RIB unchanged. Networks without such a tweak get an impactful
   edit instead: prepend [set metric 77] to the first policy term of
   the first internal device (falling back to an interface-description
   edit), which perturbs routes and exercises the cone-invalidation
   path. Returns the edited devices, their stable state and a
   description. *)
let one_line_edit state_old devs =
  let max_tries = 24 in
  let rec hunt n = function
    | (desc, devs') :: rest when n < max_tries -> (
        let st' = Stable_state.compute (Registry.build devs') in
        if ribs_equal state_old st' then Some (devs', st', desc)
        else hunt (n + 1) rest)
    | _ -> None
  in
  match hunt 0 (value_tweaks devs) with
  | Some r -> r
  | None ->
      let edited = ref None in
      let edit_policy (d : Device.t) =
        match d.Device.policies with
        | ({ Policy_ast.terms = t :: ts; _ } as p) :: rest ->
            edited :=
              Some
                (Printf.sprintf "policy %s/%s: set metric 77" d.Device.hostname
                   p.Policy_ast.pol_name);
            Some
              {
                d with
                Device.policies =
                  {
                    p with
                    Policy_ast.terms =
                      {
                        t with
                        Policy_ast.actions =
                          Policy_ast.Set_med 77 :: t.Policy_ast.actions;
                      }
                      :: ts;
                  }
                  :: rest;
              }
        | _ -> None
      in
      let edit_interface (d : Device.t) =
        match d.Device.interfaces with
        | i :: rest ->
            edited :=
              Some
                (Printf.sprintf "interface description on %s" d.Device.hostname);
            Some
              {
                d with
                Device.interfaces =
                  { i with Device.description = Some "edited" } :: rest;
              }
        | [] -> None
      in
      let apply f =
        List.map
          (fun (d : Device.t) ->
            if !edited <> None || d.Device.is_external then d
            else Option.value (f d) ~default:d)
          devs
      in
      let devs' = apply edit_policy in
      let devs' = if !edited = None then apply edit_interface else devs' in
      ( devs',
        Stable_state.compute (Registry.build devs'),
        Option.value !edited ~default:"no edit applied" )

(* The headline measurement of lib/incr: after a one-line configuration
   edit, [Incr.update] must re-analyze the suite an order of magnitude
   faster than a from-scratch run against the new state, with
   byte-identical coverage (the [incremental-scratch] oracle asserts the
   identity on random networks; here it is checked on the paper's
   workloads and the run fails if it does not hold). *)
let incr_bench () =
  section "Incremental re-analysis: one-line edit vs from-scratch (lib/incr)";
  let workloads =
    if !smoke then [ ("fattree-k4", `Ft 4) ]
    else [ ("internet2", `I2); ("fattree-k8", `Ft 8) ]
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let rows =
    List.map
      (fun (name, w) ->
        let devices, tests =
          match w with
          | `Ft k ->
              let ft = Fattree.generate ~k () in
              (ft.Fattree.devices, Datacenter.suite ft)
          | `I2 ->
              let net = Internet2.generate Internet2.paper_params in
              (net.Internet2.devices, Iterations.improved_suite net)
        in
        let state_old = Stable_state.compute (Registry.build devices) in
        let testeds_of state =
          List.map
            (fun (_, r) -> r.Nettest.tested)
            (Nettest.run_suite state tests)
        in
        let testeds_old = testeds_of state_old in
        let (session, _), cold_s =
          timed (fun () -> Incr.create state_old testeds_old)
        in
        let _devices', state_new, edit = one_line_edit state_old devices in
        let testeds_new = testeds_of state_new in
        let st, incr_s =
          timed (fun () -> Incr.update session state_new testeds_new)
        in
        let scratch, scratch_s =
          timed (fun () ->
              Netcov.merge_reports
                ~registry:(Stable_state.registry state_new)
                (Netcov.analyze_suite ~pool:Pool.sequential state_new
                   testeds_new))
        in
        let identical =
          String.equal
            (Json_export.coverage (Incr.report session).Netcov.coverage)
            (Json_export.coverage scratch.Netcov.coverage)
        in
        let speedup = cold_s /. max 1e-9 incr_s in
        if not identical then
          fail "%s: incremental coverage differs from scratch" name;
        if st.Incr.s_reuse_ratio <= 0. then
          fail "%s: nothing was reused across the update" name;
        Printf.printf "  %-12s edit: %s\n" name edit;
        Printf.printf
          "    cold %7.3fs  scratch(new) %7.3fs  incremental %7.3fs  speedup \
           %6.1fx vs cold (%.1fx vs scratch)\n"
          cold_s scratch_s incr_s speedup
          (scratch_s /. max 1e-9 incr_s);
        Printf.printf "    %s\n" (Incr.summary st);
        Printf.printf "    identical-coverage %b\n" identical;
        ( name,
          List.length testeds_new,
          edit,
          cold_s,
          scratch_s,
          incr_s,
          speedup,
          st,
          identical ))
      workloads
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"incr\",\n";
  Printf.bprintf buf "  \"smoke\": %b,\n" !smoke;
  Buffer.add_string buf
    "  \"note\": \"re-analysis after a one-line configuration edit: \
     cold_s is the initial from-scratch session (the cold run speedup is \
     measured against), scratch_s a from-scratch run against the edited \
     state, incr_s the incremental update (config diff -> cone \
     invalidation -> delta recompute); coverage is byte-identical to \
     scratch in every row\",\n";
  Buffer.add_string buf "  \"workloads\": [\n";
  List.iteri
    (fun i (name, tests, edit, cold_s, scratch_s, incr_s, speedup, st, identical) ->
      Printf.bprintf buf
        "    {\"name\": %S, \"tests\": %d, \"edit\": %S,\n\
        \     \"cold_s\": %.4f, \"scratch_s\": %.4f, \"incr_s\": %.4f, \
         \"speedup\": %.1f, \"speedup_vs_scratch\": %.2f,\n\
        \     \"changed\": %d, \"added\": %d, \"removed\": %d, \
         \"dirty_cones\": %d, \"reused\": %d, \"relabeled\": %d,\n\
        \     \"evicted_sim\": %d, \"evicted_labels\": %d, \"sim_hits\": %d, \
         \"sim_misses\": %d,\n\
        \     \"reuse_ratio\": %.4f, \"identical_coverage\": %b}%s\n"
        name tests edit cold_s scratch_s incr_s speedup
        (scratch_s /. max 1e-9 incr_s)
        st.Incr.s_changed
        st.Incr.s_added st.Incr.s_removed st.Incr.s_dirty_cones
        st.Incr.s_reused st.Incr.s_relabeled st.Incr.s_evicted_sim
        st.Incr.s_evicted_labels st.Incr.s_sim_hits st.Incr.s_sim_misses
        st.Incr.s_reuse_ratio identical
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_incr.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_incr.json\n";
  if !failures <> [] then (
    List.iter (Printf.eprintf "incr bench failure: %s\n") !failures;
    exit 1)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig6b", fig6b);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10a", fig10a);
    ("fig10b", fig10b);
    ("fig11a", fig11a);
    ("fig11b", fig11b);
    ("table2", table2);
    ("ablation", ablation);
    ("mutation", mutation);
    ("whatif", whatif);
    ("rr", rr);
    ("scaling", scaling);
    ("label", label_bench);
    ("intern", intern_bench);
    ("incr", incr_bench);
    ("kernels", kernels);
  ]

let () =
  (* Pull --trace FILE / --metrics FILE out of the argument list; the
     rest are experiment names. Exports happen after all experiments
     finish (docs/OBSERVABILITY.md). *)
  let rec split_obs trace metrics acc = function
    | [] -> (trace, metrics, List.rev acc)
    | "--trace" :: file :: rest -> split_obs (Some file) metrics acc rest
    | "--metrics" :: file :: rest -> split_obs trace (Some file) acc rest
    | "--smoke" :: rest ->
        smoke := true;
        split_obs trace metrics acc rest
    | "--oversubscribe" :: rest ->
        oversubscribe := true;
        split_obs trace metrics acc rest
    | a :: rest -> split_obs trace metrics (a :: acc) rest
  in
  let trace, metrics, args =
    split_obs None None [] (Array.to_list Sys.argv |> List.tl)
  in
  if trace <> None then Netcov_obs.Trace.enable ();
  at_exit (fun () ->
      Option.iter
        (fun file ->
          Netcov_obs.Trace.write file;
          Printf.printf "wrote trace to %s\n" file)
        trace;
      Option.iter
        (fun file ->
          Netcov_obs.Metrics.write Netcov_obs.Metrics.default file;
          Printf.printf "wrote metrics to %s\n" file)
        metrics);
  match args with
  | [] ->
      List.iter (fun (_, f) -> f ()) experiments;
      let env = Lazy.force i2_env in
      Printf.printf "\n(internet2 control-plane simulation: %.2fs; %d peers)\n"
        env.sim_s
        (List.length env.net.Internet2.peers);
      let ft = Lazy.force ft_env in
      Printf.printf "(fat-tree k=8 simulation: %.2fs)\n" ft.ft_sim_s
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown experiment %S; available: %s\n" name
                (String.concat " " (List.map fst experiments));
              exit 1)
        names
