(* netcov — command-line front end.

   Subcommands:
     internet2   run the Internet2 case study and write coverage reports
     fattree     run the datacenter case study and write coverage reports
     annotate    print one device's annotated configuration
     render      render a workload's configurations to a directory
     whatif      coverage under single-link failures (fat-tree suite)
     mutation    compare IFG coverage against mutation-based coverage
     audit       parse a config directory, report coverage ceiling (ERRORS.md)
     trace       run the Figure 1 example under the tracer, write trace JSON
     parse       syntax-check configuration files (exit 1 on the first error)
     incr        incrementally re-analyze a config change between two dirs
     serve       run the coverage-as-a-service HTTP daemon (docs/SERVE.md)
     fuzz        run the differential property oracles (docs/TESTING.md)

   Most analysis subcommands accept --trace FILE and --metrics FILE (see
   docs/OBSERVABILITY.md for the span taxonomy and metric catalog). *)

open Cmdliner
open Netcov_config
open Netcov_sim
open Netcov_core
open Netcov_nettest
open Netcov_workloads

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Enable debug logging.")

let out_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"DIR"
        ~doc:"Write rendered configurations and an lcov report to $(docv).")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record pipeline spans and write a Chrome trace_event JSON file to \
           $(docv) (open it in chrome://tracing or ui.perfetto.dev).")

let metrics_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the metrics registry as JSON to $(docv) when the run \
           finishes (schema in docs/OBSERVABILITY.md).")

(* Runs [f] with tracing enabled when requested, then exports the trace
   ring and/or metrics registry. Exports also happen when [f] raises, so
   a crashed run still leaves its telemetry behind. *)
let with_obs ~trace ~metrics f =
  if trace <> None then Netcov_obs.Trace.enable ();
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun file ->
          Netcov_obs.Trace.write file;
          Printf.printf "wrote %d trace events to %s (%d dropped)\n"
            (List.length (Netcov_obs.Trace.events ()))
            file
            (Netcov_obs.Trace.dropped ()))
        trace;
      Option.iter
        (fun file ->
          Netcov_obs.Metrics.write Netcov_obs.Metrics.default file;
          Printf.printf "wrote metrics to %s\n" file)
        metrics)
    f

(* Uniform parser-diagnostic exit: [file:line: message] on stderr and a
   clean exit code 1 — never an uncaught-exception backtrace. *)
let parse_error_exit ~file ~line message : 'a =
  Printf.eprintf "%s:%d: %s\n%!" file line message;
  exit 1

let syntax_arg =
  Arg.(
    value
    & opt (enum [ ("junos", `Junos); ("ios", `Ios) ]) `Junos
    & info [ "syntax" ] ~docv:"SYNTAX" ~doc:"Concrete syntax of the files.")

let i2_suite =
  Arg.(
    value
    & opt (enum [ ("bagpipe", `Bagpipe); ("improved", `Improved) ]) `Bagpipe
    & info [ "suite" ] ~docv:"SUITE"
        ~doc:"Test suite to run: $(b,bagpipe) or $(b,improved).")

let print_summary results report =
  List.iter
    (fun ((t : Nettest.t), (r : Nettest.result)) ->
      Printf.printf "%-24s %-13s %6d checks  %s\n" t.name
        (Nettest.kind_to_string t.kind)
        r.outcome.Nettest.checks
        (if Nettest.passed r.outcome then "PASS"
         else Printf.sprintf "FAIL (%d)" (List.length r.outcome.Nettest.failures)))
    results;
  let stats = Coverage.line_stats report.Netcov.coverage in
  Printf.printf "\n%s" (Lcov.file_table report.Netcov.coverage);
  Printf.printf "weak lines: %d; dead code: %.1f%%\n" stats.Coverage.weak_lines
    (Netcov.dead_line_pct report);
  Printf.printf
    "timing: total %.2fs (simulations %.2fs, labeling %.2fs); IFG %d nodes\n"
    report.Netcov.timing.Netcov.total_s report.Netcov.timing.Netcov.sim_s
    report.Netcov.timing.Netcov.label_s report.Netcov.timing.Netcov.ifg_nodes

let maybe_write ?(diags = []) ?(failures = []) out report =
  match out with
  | None -> ()
  | Some dir ->
      Lcov.write_tree report.Netcov.coverage dir;
      Html_report.write_tree report.Netcov.coverage (Filename.concat dir "html");
      let oc = open_out (Filename.concat dir "coverage.json") in
      output_string oc (Json_export.report ~diags ~failures report);
      close_out oc;
      Printf.printf
        "wrote %s/coverage.info, %s/coverage.json, %s/configs/ and %s/html/\n"
        dir dir dir dir

let internet2_cmd =
  let peers =
    Arg.(
      value & opt int 60
      & info [ "peers" ] ~docv:"N" ~doc:"Number of external eBGP peers.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Workload seed.")
  in
  let reflectors =
    Arg.(
      value
      & opt (some int) None
      & info [ "route-reflectors" ] ~docv:"N"
          ~doc:
            "Use $(docv) route reflectors instead of an iBGP full mesh \
             (the first $(docv) routers become reflectors).")
  in
  let run verbose peers seed reflectors suite out trace metrics =
    setup_logs verbose;
    with_obs ~trace ~metrics @@ fun () ->
    let ibgp =
      match reflectors with
      | None -> Internet2.Full_mesh
      | Some n -> Internet2.Route_reflectors n
    in
    let params = { Internet2.default_params with n_peers = peers; seed; ibgp } in
    let net = Internet2.generate params in
    let state = Stable_state.compute (Registry.build net.Internet2.devices) in
    let tests =
      match suite with
      | `Bagpipe -> Bagpipe.suite net
      | `Improved -> Iterations.improved_suite net
    in
    let results = Nettest.run_suite state tests in
    let report = Netcov.analyze state (Nettest.suite_tested results) in
    print_summary results report;
    maybe_write out report
  in
  Cmd.v
    (Cmd.info "internet2" ~doc:"Run the Internet2 backbone case study.")
    Term.(
      const run $ verbose $ peers $ seed $ reflectors $ i2_suite $ out_dir
      $ trace_out $ metrics_out)

let fattree_cmd =
  let k =
    Arg.(
      value & opt int 4 & info [ "k" ] ~docv:"K" ~doc:"Fat-tree arity (even, >= 4).")
  in
  let run verbose k out trace metrics =
    setup_logs verbose;
    with_obs ~trace ~metrics @@ fun () ->
    let ft = Fattree.generate ~k () in
    let state = Stable_state.compute (Registry.build ft.Fattree.devices) in
    let results = Nettest.run_suite state (Datacenter.suite ft) in
    let report = Netcov.analyze state (Nettest.suite_tested results) in
    print_summary results report;
    maybe_write out report
  in
  Cmd.v
    (Cmd.info "fattree" ~doc:"Run the fat-tree datacenter case study.")
    Term.(const run $ verbose $ k $ out_dir $ trace_out $ metrics_out)

let annotate_cmd =
  let device =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DEVICE" ~doc:"Device hostname to annotate.")
  in
  let peers =
    Arg.(
      value & opt int 60
      & info [ "peers" ] ~docv:"N" ~doc:"Number of external eBGP peers.")
  in
  let run verbose device peers =
    setup_logs verbose;
    let params = { Internet2.default_params with n_peers = peers } in
    let net = Internet2.generate params in
    let state = Stable_state.compute (Registry.build net.Internet2.devices) in
    let results = Nettest.run_suite state (Iterations.improved_suite net) in
    let report = Netcov.analyze state (Nettest.suite_tested results) in
    print_string (Lcov.annotate report.Netcov.coverage device)
  in
  Cmd.v
    (Cmd.info "annotate"
       ~doc:
         "Print a device's configuration annotated with coverage from the \
          improved Internet2 suite.")
    Term.(const run $ verbose $ device $ peers)

let render_cmd =
  let workload =
    Arg.(
      value
      & opt (enum [ ("internet2", `I2); ("fattree", `Ft) ]) `I2
      & info [ "workload" ] ~docv:"W" ~doc:"Workload to render.")
  in
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run verbose workload dir =
    setup_logs verbose;
    let devices =
      match workload with
      | `I2 -> (Internet2.generate Internet2.default_params).Internet2.devices
      | `Ft -> (Fattree.generate ~k:4 ()).Fattree.devices
    in
    let reg = Registry.build devices in
    let report = Netcov.analyze (Stable_state.compute reg) Netcov.no_tests in
    Lcov.write_tree report.Netcov.coverage dir;
    Printf.printf "rendered %d internal devices into %s/configs/\n"
      (List.length (Registry.internal_devices reg))
      dir
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Render a workload's configurations to files.")
    Term.(const run $ verbose $ workload $ dir)

let whatif_cmd =
  let k =
    Arg.(
      value & opt int 4 & info [ "k" ] ~docv:"K" ~doc:"Fat-tree arity (even, >= 4).")
  in
  let multipath =
    Arg.(
      value & opt int 1
      & info [ "multipath" ] ~docv:"M"
          ~doc:"ECMP width (1 makes backup links visible only under failures).")
  in
  let run verbose k multipath trace metrics =
    setup_logs verbose;
    with_obs ~trace ~metrics @@ fun () ->
    let ft = Fattree.generate ~k ~multipath () in
    let state = Stable_state.compute (Registry.build ft.Fattree.devices) in
    let suite =
      [ Datacenter.default_route_check ft; Datacenter.tor_pingmesh ft ]
    in
    let result = Whatif.run state suite in
    let stats cov = Coverage.pct (Coverage.line_stats cov) in
    Printf.printf "baseline coverage:                %.1f%%\n"
      (stats result.Whatif.baseline);
    Printf.printf "union over %d failure scenarios:  %.1f%%\n"
      (List.length result.Whatif.scenarios)
      (stats result.Whatif.union);
    let only = Whatif.failure_only result in
    Printf.printf "elements covered only under failures: %d\n"
      (Element.Id_set.cardinal only);
    let reg = Stable_state.registry state in
    Element.Id_set.elements only
    |> List.filteri (fun i _ -> i < 10)
    |> List.iter (fun id ->
           let e = Registry.element reg id in
           Printf.printf "  %s:%s\n" e.Element.device (Element.name_of e))
  in
  Cmd.v
    (Cmd.info "whatif"
       ~doc:"Coverage under single-link failures (fat-tree reachability suite).")
    Term.(const run $ verbose $ k $ multipath $ trace_out $ metrics_out)

let mutation_cmd =
  let k =
    Arg.(
      value & opt int 4 & info [ "k" ] ~docv:"K" ~doc:"Fat-tree arity (even, >= 4).")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("warm", Mutation.Warm); ("scratch", Mutation.Scratch) ])
          Mutation.Warm
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Mutant execution: $(b,warm) replays each mutant's dirty cone \
             from the baseline fixed point; $(b,scratch) recomputes every \
             mutant network from a fresh registry build (the reference \
             semantics).")
  in
  let ops =
    Arg.(
      value
      & opt (enum [ ("delete", `Delete); ("all", `All) ]) `Delete
      & info [ "ops" ] ~docv:"OPS"
          ~doc:
            "Mutation operators: $(b,delete) (the paper's section 3.1 \
             definition, comparable to IFG coverage) or $(b,all) (adds \
             action flips, bound widening/narrowing, preference \
             perturbation, community drops).")
  in
  let run verbose k mode ops trace metrics =
    setup_logs verbose;
    with_obs ~trace ~metrics @@ fun () ->
    let ft = Fattree.generate ~k () in
    let reg = Registry.build ft.Fattree.devices in
    let state = Stable_state.compute reg in
    let t = Datacenter.default_route_check ft in
    let r = t.Nettest.run state in
    let report = Netcov.analyze state r.Nettest.tested in
    let covered = Coverage.covered_elements report.Netcov.coverage in
    let operators =
      match ops with
      | `Delete -> Mutation.default_operators
      | `All -> Mutation.all_operators
    in
    let mut =
      Netcov_parallel.Pool.with_pool (fun pool ->
          Mutation.run reg
            ~oracle:(Mutation.facts_oracle r.Nettest.tested.Netcov.dp_facts)
            ~operators ~mode ~pool ())
    in
    Printf.printf "IFG coverage:      %d elements\n" (Element.Id_set.cardinal covered);
    Printf.printf "mutation coverage: %d elements (%d mutants, %.1fs)\n"
      (Element.Id_set.cardinal mut.Mutation.killed)
      mut.Mutation.mutants_run mut.Mutation.seconds;
    Printf.printf "only IFG: %d; only mutation: %d\n"
      (Element.Id_set.cardinal (Element.Id_set.diff covered mut.Mutation.killed))
      (Element.Id_set.cardinal (Element.Id_set.diff mut.Mutation.killed covered))
  in
  Cmd.v
    (Cmd.info "mutation"
       ~doc:
         "Compare IFG coverage against mutation-based coverage (typed \
          mutation operators, one control-plane delta-recompute per mutant; \
          see docs/MUTATION.md).")
    Term.(const run $ verbose $ k $ mode $ ops $ trace_out $ metrics_out)

let trace_cmd =
  let file =
    Arg.(
      value
      & pos 0 string "trace.json"
      & info [] ~docv:"FILE" ~doc:"Trace output file (Chrome trace_event JSON).")
  in
  (* The paper's Figure 1 network (examples/quickstart.ml), round-tripped
     through the Junos emitter and parser so the trace shows a genuine
     parse stage, then simulated and analyzed end to end. *)
  let figure1_devices () =
    let ip = Netcov_types.Ipv4.of_string in
    let pfx = Netcov_types.Prefix.of_string in
    let r1 =
      Device.make
        ~interfaces:[ Device.interface ~address:(ip "192.168.1.1", 30) "eth0" ]
        ~policies:
          [
            {
              Policy_ast.pol_name = "R2-to-R1";
              terms =
                [
                  {
                    term_name = "block";
                    matches =
                      [
                        Policy_ast.Match_prefix
                          (pfx "10.10.2.0/24", Policy_ast.Exact);
                      ];
                    actions = [ Policy_ast.Reject ];
                  };
                  {
                    term_name = "prefer";
                    matches =
                      [
                        Policy_ast.Match_prefix
                          (pfx "10.10.1.0/24", Policy_ast.Exact);
                      ];
                    actions =
                      [ Policy_ast.Set_local_pref 120; Policy_ast.Accept ];
                  };
                ];
            };
          ]
        ~bgp:
          {
            Device.local_as = 65001;
            router_id = ip "192.168.1.1";
            networks = [];
            aggregates = [];
            redistributes = [];
            groups = [];
            neighbors =
              [
                {
                  Device.nb_ip = ip "192.168.1.2";
                  nb_remote_as = 65002;
                  nb_group = None;
                  nb_import = [ "R2-to-R1" ];
                  nb_export = [];
                  nb_local_addr = None;
                  nb_next_hop_self = false;
                  nb_rr_client = false;
                  nb_description = Some "to R2";
                };
              ];
            multipath = 1;
          }
        "r1"
    in
    let r2 =
      Device.make
        ~interfaces:
          [
            Device.interface ~address:(ip "192.168.1.2", 30) "eth0";
            Device.interface ~address:(ip "10.10.1.1", 24) "eth1";
          ]
        ~bgp:
          {
            Device.local_as = 65002;
            router_id = ip "192.168.1.2";
            networks = [ pfx "10.10.1.0/24" ];
            aggregates = [];
            redistributes = [];
            groups = [];
            neighbors =
              [
                {
                  Device.nb_ip = ip "192.168.1.1";
                  nb_remote_as = 65001;
                  nb_group = None;
                  nb_import = [];
                  nb_export = [];
                  nb_local_addr = None;
                  nb_next_hop_self = false;
                  nb_rr_client = false;
                  nb_description = Some "to R1";
                };
              ];
            multipath = 1;
          }
        "r2"
    in
    [ r1; r2 ]
  in
  let run verbose file metrics =
    setup_logs verbose;
    with_obs ~trace:(Some file) ~metrics @@ fun () ->
    let module T = Netcov_obs.Trace in
    let texts =
      T.with_span "emit" @@ fun () ->
      List.map
        (fun d -> (d.Device.hostname, Emit_junos.to_string d))
        (figure1_devices ())
    in
    let devices =
      List.map
        (fun (hostname, text) ->
          T.with_span "parse" ~args:[ ("file", T.S (hostname ^ ".cfg")) ]
          @@ fun () ->
          match Parse_junos.parse ~hostname text with
          | Ok d -> d
          | Error e ->
              parse_error_exit ~file:(hostname ^ ".cfg") ~line:e.Parse_junos.line
                e.Parse_junos.message)
        texts
    in
    let state = Stable_state.compute (Registry.build devices) in
    let tested_entry = Netcov_types.Prefix.of_string "10.10.1.0/24" in
    let dp_facts =
      List.map
        (fun entry -> Fact.F_main_rib { host = "r1"; entry })
        (Stable_state.main_lookup state "r1" tested_entry)
    in
    let report =
      Netcov.analyze state { Netcov.dp_facts; cp_elements = [] }
    in
    let stats = Coverage.line_stats report.Netcov.coverage in
    Printf.printf
      "figure 1 example: converged in %d rounds; coverage %.1f%% of %d \
       considered lines\n"
      (Stable_state.rounds state)
      (Coverage.pct stats) stats.Coverage.considered;
    List.iter
      (fun name ->
        match T.find_spans name with
        | [] -> ()
        | spans ->
            let total =
              List.fold_left (fun a (e : T.event) -> a +. e.ev_dur_us) 0. spans
            in
            Printf.printf "  %-12s %4d span(s)  %8.1f us\n" name
              (List.length spans) total)
      [ "emit"; "parse"; "simulate"; "analyze"; "materialize"; "label" ]
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the paper's Figure 1 example (emit, parse, simulate, analyze) \
          with tracing on and write a Chrome trace_event JSON file.")
    Term.(const run $ verbose $ file $ metrics_out)

let audit_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:"Directory of configuration files (*.cfg or *.conf).")
  in
  let mode =
    Arg.(
      value
      & vflag `Keep_going
          [
            ( `Keep_going,
              info [ "keep-going" ]
                ~doc:
                  "Recover from malformed stanzas, duplicate hostnames, \
                   unknown neighbors and crashing per-test analyses: collect \
                   diagnostics, emit a partial coverage report that embeds \
                   them, and exit 3 when anything was skipped (this is the \
                   default; see docs/ERRORS.md)." );
            ( `Strict,
              info [ "strict" ]
                ~doc:
                  "Fail fast: the first error-severity diagnostic aborts the \
                   run with exit 1. Warnings still print." );
          ])
  in
  let run verbose dir syntax mode out trace metrics =
    setup_logs verbose;
    let strict = mode = `Strict in
    let code =
      with_obs ~trace ~metrics @@ fun () ->
      let m_parse_files =
        Netcov_obs.Metrics.counter Netcov_obs.Metrics.default
          ~help:"configuration files parsed" ~unit_:"files" "parse.files"
      in
      let m_parse_errors =
        Netcov_obs.Metrics.counter Netcov_obs.Metrics.default
          ~help:"configuration files rejected by the parser" ~unit_:"files"
          "parse.errors"
      in
      let coll = Diag.collector () in
      (* Every diagnostic goes through here: collected for the report,
         printed as a [file:line: severity: message] line, and — under
         --strict — fatal at the first error severity. *)
      let emit d =
        Diag.add coll d;
        Printf.eprintf "%s\n%!" (Diag.to_string d);
        if strict && Diag.is_error d then exit 1
      in
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               Filename.check_suffix f ".cfg" || Filename.check_suffix f ".conf")
        |> List.sort String.compare
      in
      if files = [] then begin
        Printf.eprintf "no *.cfg or *.conf files in %s\n" dir;
        exit 1
      end;
      let read_file path =
        let ic = open_in path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      let devices =
        List.filter_map
          (fun f ->
            Netcov_obs.Trace.with_span "parse"
              ~args:[ ("file", Netcov_obs.Trace.S f) ]
            @@ fun () ->
            let hostname = Filename.remove_extension f in
            match read_file (Filename.concat dir f) with
            | exception Sys_error msg ->
                Netcov_obs.Metrics.inc m_parse_errors 1;
                emit (Diag.error ~file:f Diag.Io_error msg);
                None
            | text -> (
                Netcov_obs.Metrics.inc m_parse_files 1;
                (* --strict syntax-checks each file whole (a malformed
                   stanza is an error); --keep-going parses leniently,
                   skipping bad stanzas with a recovery warning. *)
                let parsed =
                  if strict then
                    match syntax with
                    | `Junos ->
                        Result.map
                          (fun d -> (d, []))
                          (Result.map_error
                             (fun (e : Parse_junos.error) ->
                               Diag.error ~file:f ~line:e.line Diag.Parse_error
                                 e.message)
                             (Parse_junos.parse ~hostname text))
                    | `Ios ->
                        Result.map
                          (fun d -> (d, []))
                          (Result.map_error
                             (fun (e : Parse_ios.error) ->
                               Diag.error ~file:f ~line:e.line Diag.Parse_error
                                 e.message)
                             (Parse_ios.parse ~hostname text))
                  else
                    match syntax with
                    | `Junos -> Parse_junos.parse_lenient ~file:f ~hostname text
                    | `Ios -> Parse_ios.parse_lenient ~file:f ~hostname text
                in
                match parsed with
                | Ok (d, warns) ->
                    List.iter emit warns;
                    Some d
                | Error diag ->
                    Netcov_obs.Metrics.inc m_parse_errors 1;
                    emit diag;
                    None))
          files
      in
      Printf.printf "parsed %d device(s)\n" (List.length devices);
      let reg, reg_diags = Registry.build_lenient devices in
      List.iter emit reg_diags;
      Printf.printf "%d elements across %d considered lines (%d total)\n"
        (Registry.n_elements reg)
        (Registry.considered_lines reg)
        (Registry.total_lines reg);
      let state = Stable_state.compute ~diags:emit reg in
      Printf.printf
        "stable state: %d main-RIB entries, %d BGP sessions, converged in %d \
         rounds\n"
        (Stable_state.total_main_entries state)
        (List.length (Stable_state.edges state) / 2)
        (Stable_state.rounds state);
      (* hypothetical full data plane test: the configuration a perfect
         data plane test suite could ever cover *)
      let all = Netcov_dpcov.Dpcov.all_data_plane_tested state in
      let outcome =
        Netcov.analyze_suite_isolated ~diags:emit
          ~labels:[ "data-plane-upper-bound" ] state [ all ]
      in
      let failures = outcome.Netcov.failures in
      let report = Netcov.merge_reports ~registry:reg outcome.Netcov.ok in
      let stats = Coverage.line_stats report.Netcov.coverage in
      Printf.printf
        "\nupper bound for data-plane testing: %.1f%% of considered lines\n"
        (Coverage.pct stats);
      Printf.printf "dead configuration: %.1f%%\n" (Netcov.dead_line_pct report);
      let by_reason = Hashtbl.create 8 in
      List.iter
        (fun (_, reason) ->
          Hashtbl.replace by_reason reason
            (1 + Option.value (Hashtbl.find_opt by_reason reason) ~default:0))
        report.Netcov.dead.Deadcode.details;
      Hashtbl.iter
        (fun reason n ->
          Printf.printf "  %4d x %s\n" n (Deadcode.reason_to_string reason))
        by_reason;
      maybe_write ~diags:(Diag.items coll) ~failures out report;
      if Diag.length coll > 0 || failures <> [] then 3 else 0
    in
    if code <> 0 then exit code
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Parse configuration files from a directory, simulate the network \
          and report the data-plane-testable coverage ceiling plus dead \
          configuration. Exits 0 on a clean run, 3 when $(b,--keep-going) \
          (the default) recovered from problems and wrote a partial report, \
          and 1 when $(b,--strict) hit an error (docs/ERRORS.md).")
    Term.(
      const run $ verbose $ dir $ syntax_arg $ mode $ out_dir $ trace_out
      $ metrics_out)

let parse_cmd =
  let files =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Configuration files to syntax-check.")
  in
  let run verbose files syntax =
    setup_logs verbose;
    let read_file path =
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    List.iter
      (fun file ->
        let hostname = Filename.remove_extension (Filename.basename file) in
        let text =
          try read_file file
          with Sys_error msg ->
            (* unreadable file (directory, permissions, vanished after the
               cmdliner existence check): diagnostic, not a backtrace *)
            Printf.eprintf "%s\n%!" msg;
            exit 1
        in
        let parsed =
          match syntax with
          | `Junos ->
              Result.map_error
                (fun (e : Parse_junos.error) -> (e.line, e.message))
                (Parse_junos.parse ~hostname text)
          | `Ios ->
              Result.map_error
                (fun (e : Parse_ios.error) -> (e.line, e.message))
                (Parse_ios.parse ~hostname text)
        in
        match parsed with
        | Ok d ->
            Printf.printf "%s: ok (%s, %d elements)\n" file d.Device.hostname
              (List.length (Device.element_keys d))
        | Error (line, message) -> parse_error_exit ~file ~line message)
      files
  in
  Cmd.v
    (Cmd.info "parse"
       ~doc:
         "Syntax-check configuration files. Prints one line per parsed file; \
          on the first malformed file prints $(i,file:line: message) to \
          stderr and exits 1.")
    Term.(const run $ verbose $ files $ syntax_arg)

let incr_cmd =
  let baseline =
    Arg.(
      required
      & opt (some file) None
      & info [ "baseline" ] ~docv:"REPORT"
          ~doc:
            "Coverage report JSON of the old configuration (the \
             coverage.json an earlier run wrote with $(b,--out)). Used to \
             cross-check the recomputed old coverage and to report the \
             before/after delta.")
  in
  let old_dir =
    Arg.(
      required
      & opt (some dir) None
      & info [ "old" ] ~docv:"DIR"
          ~doc:"Directory of old configuration files (*.cfg or *.conf).")
  in
  let new_dir =
    Arg.(
      required
      & opt (some dir) None
      & info [ "new" ] ~docv:"DIR"
          ~doc:"Directory of new configuration files.")
  in
  let run verbose baseline old_dir new_dir syntax trace metrics =
    setup_logs verbose;
    with_obs ~trace ~metrics @@ fun () ->
    (* The baseline report is parsed before any configuration is
       touched: malformed report input is a user error, reported as
       "file: message" with exit 1, never a backtrace. *)
    let report_error msg =
      Printf.eprintf "%s: %s\n%!" baseline msg;
      exit 1
    in
    let bl =
      match Json_import.parse_file baseline with
      | Error msg -> report_error msg
      | Ok v -> v
    in
    let ( >>= ) o f = Option.bind o f in
    let bl_overall =
      match Json_import.member "coverage" bl >>= Json_import.member "overall" with
      | Some o -> o
      | None -> report_error "not a coverage report: missing coverage.overall"
    in
    let bl_num field =
      match Json_import.member field bl_overall >>= Json_import.to_num with
      | Some f -> f
      | None ->
          report_error
            (Printf.sprintf "not a coverage report: missing coverage.overall.%s"
               field)
    in
    let bl_pct = bl_num "percent" in
    let read_file path =
      let ic = open_in path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let load_dir dir =
      let files =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               Filename.check_suffix f ".cfg" || Filename.check_suffix f ".conf")
        |> List.sort String.compare
      in
      if files = [] then begin
        Printf.eprintf "no *.cfg or *.conf files in %s\n" dir;
        exit 1
      end;
      List.map
        (fun f ->
          let path = Filename.concat dir f in
          let hostname = Filename.remove_extension f in
          let text =
            try read_file path
            with Sys_error msg ->
              Printf.eprintf "%s\n%!" msg;
              exit 1
          in
          match syntax with
          | `Junos -> (
              match Parse_junos.parse ~hostname text with
              | Ok d -> d
              | Error (e : Parse_junos.error) ->
                  parse_error_exit ~file:path ~line:e.line e.message)
          | `Ios -> (
              match Parse_ios.parse ~hostname text with
              | Ok d -> d
              | Error (e : Parse_ios.error) ->
                  parse_error_exit ~file:path ~line:e.line e.message))
        files
    in
    let module Incr = Netcov_incr.Incr in
    let module Registry_diff = Netcov_incr.Registry_diff in
    let state_old = Stable_state.compute (Registry.build (load_dir old_dir)) in
    let tested_old = Netcov_dpcov.Dpcov.all_data_plane_tested state_old in
    let session, _ = Incr.create state_old [ tested_old ] in
    let rep_old = Incr.report session in
    let old_pct = Coverage.line_stats rep_old.Netcov.coverage |> Coverage.pct in
    if Float.abs (old_pct -. bl_pct) > 0.05 then
      Printf.printf
        "warning: baseline report says %.1f%% but the old configuration \
         recomputes to %.1f%% — stale baseline?\n"
        bl_pct old_pct;
    let state_new = Stable_state.compute (Registry.build (load_dir new_dir)) in
    let tested_new = Netcov_dpcov.Dpcov.all_data_plane_tested state_new in
    let ustats = Incr.update session state_new [ tested_new ] in
    let rep = Incr.report session in
    Option.iter
      (fun d -> print_string (Registry_diff.summary d))
      (Incr.last_diff session);
    print_string (Incr.summary ustats);
    let pct = Coverage.line_stats rep.Netcov.coverage |> Coverage.pct in
    Printf.printf "coverage: %.1f%% -> %.1f%% of considered lines\n" old_pct pct;
    let reg_new = Incr.registry session in
    if
      Registry.n_elements (Coverage.registry rep_old.Netcov.coverage)
      = Registry.n_elements reg_new
    then begin
      let d =
        Coverage_diff.diff ~baseline:rep_old.Netcov.coverage rep.Netcov.coverage
      in
      let card = Element.Id_set.cardinal in
      List.iter
        (fun (dev, (dd : Coverage_diff.device_delta)) ->
          Printf.printf "  %s: +%d gained, -%d lost, %d strengthened, %d weakened\n"
            dev
            (card dd.Coverage_diff.d_gained)
            (card dd.Coverage_diff.d_lost)
            (card dd.Coverage_diff.d_strengthened)
            (card dd.Coverage_diff.d_weakened))
        (Coverage_diff.by_device reg_new d)
    end
    else
      Printf.printf
        "(element sets differ between versions; per-device delta skipped)\n"
  in
  Cmd.v
    (Cmd.info "incr"
       ~doc:
         "Incrementally re-analyze a configuration change: diff the old and \
          new configuration directories at the element level, invalidate \
          only the affected contribution cones and cached simulations, \
          recompute the delta and report per-device coverage changes \
          (docs/INCREMENTAL.md). Exits 1 with $(i,file: message) on a \
          malformed baseline report.")
    Term.(
      const run $ verbose $ baseline $ old_dir $ new_dir $ syntax_arg
      $ trace_out $ metrics_out)

let serve_cmd =
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST"
          ~doc:"Address to bind (name or dotted quad).")
  in
  let port =
    Arg.(
      value & opt int 8080
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let max_networks =
    Arg.(
      value & opt int 64
      & info [ "max-networks" ] ~docv:"N"
          ~doc:
            "Maximum number of concurrently registered networks; uploads \
             beyond it are answered 409 until one is deleted.")
  in
  let handlers =
    Arg.(
      value
      & opt (some int) None
      & info [ "handlers" ] ~docv:"N"
          ~doc:
            "Connection-handler domains (default: the pool default, \
             $(b,NETCOV_DOMAINS) or the core count capped at 8). With 1 the \
             daemon is single-threaded and connections queue.")
  in
  let run verbose host port max_networks handlers metrics =
    (* serve is long-running and operator-facing: request logs (Info)
       are on by default, -v raises them to Debug. *)
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some (if verbose then Logs.Debug else Logs.Info));
    with_obs ~trace:None ~metrics @@ fun () ->
    let server =
      Netcov_serve.Server.create ~host ~port ~max_networks ?handlers ()
    in
    let stop _ = Netcov_serve.Server.shutdown server in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    (* SIGPIPE would kill the process when a peer disappears mid-write *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    Printf.printf
      "netcov serve: listening on http://%s:%d (API reference: \
       docs/SERVE.md; Ctrl-C for graceful shutdown)\n%!"
      host
      (Netcov_serve.Server.port server);
    Netcov_serve.Server.serve server
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the coverage-as-a-service daemon: a long-running HTTP server \
          that keeps one warm incremental session per uploaded network \
          (registry, interner, BDD tables and simulation memo cache persist \
          across requests) and exposes a JSON API — upload configurations, \
          register test suites, apply configuration deltas and read coverage \
          reports, plus /metrics and /healthz (API reference in \
          docs/SERVE.md). SIGINT/SIGTERM shut down gracefully: in-flight \
          requests finish, new connections are refused.")
    Term.(
      const run $ verbose $ host $ port $ max_networks $ handlers
      $ metrics_out)

let fuzz_cmd =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Root seed of the run. Failures print a per-iteration \
             reproduction seed; pass it back here with $(b,--iters) 1 to \
             replay one counterexample.")
  in
  let iters =
    Arg.(
      value & opt int 200
      & info [ "iters" ] ~docv:"K" ~doc:"Iterations per oracle.")
  in
  let oracles =
    Arg.(
      value & opt_all string []
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:"Run only oracle $(docv) (repeatable; default: all).")
  in
  let run verbose seed iters oracles =
    setup_logs verbose;
    List.iter
      (fun n ->
        if Netcov_check.Oracles.find n = None then begin
          Printf.eprintf "unknown oracle %S; available: %s\n" n
            (String.concat ", "
               (List.map
                  (fun (o : Netcov_check.Oracles.t) -> o.Netcov_check.Oracles.name)
                  Netcov_check.Oracles.all));
          exit 2
        end)
      oracles;
    let names = match oracles with [] -> None | ns -> Some ns in
    let ok =
      try Netcov_check.Oracles.run_all ?names ~seed ~iters ()
      with e ->
        (* An oracle escaping with an exception is a harness bug, but it
           should still fail like a counterexample: one diagnostic line
           and exit 1, never an uncaught-exception backtrace. *)
        Printf.eprintf "fuzz: oracle crashed: %s\n%!" (Printexc.to_string e);
        exit 1
    in
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Run the differential property oracles (emit/parse roundtrip, \
          parallel determinism, sim-cache equivalence, BDD vs truth table, \
          coverage monotonicity/merge, intern-reference, fault-isolation, \
          incremental-scratch, label-arena, mutation-falsifiability) on \
          random networks. Exits 1 and prints a shrunk counterexample \
          plus a reproduction seed on any divergence. See docs/TESTING.md.")
    Term.(const run $ verbose $ seed $ iters $ oracles)

let () =
  let doc = "test coverage for network configurations (NetCov, NSDI 2023)" in
  let info = Cmd.info "netcov" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            internet2_cmd;
            fattree_cmd;
            annotate_cmd;
            render_cmd;
            whatif_cmd;
            mutation_cmd;
            audit_cmd;
            incr_cmd;
            serve_cmd;
            trace_cmd;
            parse_cmd;
            fuzz_cmd;
          ]))
